// E5 — §2.4: "2-4x lower read tail latency and 2x higher write throughput for RocksDB over
// ZNS" (WD), and "22x lower tail latencies and 65% higher application throughput" (IBM SALSA).
//
// Setup: the mini-LSM KV store runs over (a) BlockEnv on the conventional SSD and (b) the
// ZenFS-style zoned filesystem on the ZNS SSD — identical TLC flash. After loading a working
// set sized to put the devices under real space pressure, a mixed phase issues point reads
// with concurrent overwrites. Read tail latency on the conventional path absorbs device-GC
// interference; the ZNS path has none (reclamation is whole-zone resets, hint-grouped).

#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_main.h"
#include "src/core/matched_pair.h"
#include "src/kv/block_env.h"
#include "src/kv/kv_store.h"
#include "src/telemetry/telemetry.h"
#include "src/util/histogram.h"
#include "src/util/rng.h"

using namespace blockhead;

namespace {

constexpr std::uint64_t kKeys = 185000;
constexpr std::size_t kValueBytes = 150;
constexpr std::uint64_t kMixedOps = 200000;
constexpr double kReadFraction = 0.75;

std::string KeyOf(std::uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%010llu", static_cast<unsigned long long>(n));
  return buf;
}

std::string ValueOf(std::uint64_t n) {
  std::string v = "v" + std::to_string(n);
  v.resize(kValueBytes, 'x');
  return v;
}

struct KvRun {
  Histogram read_latency;
  std::uint64_t write_bytes = 0;
  SimTime write_elapsed = 0;
  double device_wa = 1.0;

  double WriteMiBps() const { return ToMiBPerSec(write_bytes, write_elapsed); }
};

KvRun RunWorkload(Env* env, const FlashDevice& flash, Telemetry* tel,
                  const std::string& kv_prefix) {
  KvConfig cfg;
  cfg.memtable_bytes = 64 * kKiB;
  cfg.level_base_bytes = 1 * kMiB;
  cfg.level_multiplier = 3.0;
  cfg.target_table_bytes = 448 * kKiB;  // ~One table per 512 KiB zone incl. index/bloom overhead.
  cfg.max_levels = 5;
  KvRun run;
  auto store_or = KvStore::Open(env, cfg, 0);
  if (!store_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n", store_or.status().ToString().c_str());
    return run;
  }
  KvStore& store = *store_or.value();
  store.AttachTelemetry(tel, kv_prefix);

  // Load phase.
  SimTime t = 0;
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    auto p = store.Put(KeyOf(i), ValueOf(i), t);
    if (!p.ok()) {
      std::fprintf(stderr, "load put failed: %s\n", p.status().ToString().c_str());
      return run;
    }
    t = std::max(t, p.value());
  }
  t += 10 * kMillisecond;  // Let the backlog drain.

  // Mixed phase.
  Rng rng(11);
  const SimTime mixed_start = t;
  for (std::uint64_t n = 0; n < kMixedOps; ++n) {
    env->Maintain(t, /*reads_pending=*/false);
    const std::uint64_t k = rng.NextBelow(kKeys);
    if (rng.NextBool(kReadFraction)) {
      auto g = store.Get(KeyOf(k), t);
      if (!g.ok()) {
        continue;
      }
      run.read_latency.Record(g->completion > t ? g->completion - t : 0);
      t = std::max(t, g->completion);
    } else {
      auto p = store.Put(KeyOf(k), ValueOf(k + n), t);
      if (!p.ok()) {
        continue;
      }
      run.write_bytes += KeyOf(k).size() + kValueBytes;
      t = std::max(t, p.value());
    }
  }
  run.write_elapsed = t - mixed_start;
  const FlashStats& fs = flash.stats();
  run.device_wa = fs.host_pages_programmed == 0
                      ? 1.0
                      : static_cast<double>(fs.total_pages_programmed()) /
                            static_cast<double>(fs.host_pages_programmed);
  return run;
}

}  // namespace

int RunBench(const BenchOptions& opts, Telemetry& tel) {
  MaybeEnableTimeline(opts, tel);  // Sampler groups registered later still get grid clocks.
  std::printf("=== E5: KV-store read tail latency & write throughput, conventional vs ZNS ===\n");
  std::printf("Paper claims (§2.4): 2-4x lower read tail latency (up to 22x at extreme\n"
              "percentiles, IBM), ~2x write throughput. LSM KV, %llu keys, %llu mixed ops\n"
              "(%.0f%% reads), identical TLC flash.\n\n",
              static_cast<unsigned long long>(kKeys), static_cast<unsigned long long>(kMixedOps),
              kReadFraction * 100);

  // 64 MiB of TLC flash: small enough that the ~20 MiB KV working set plus LSM transients put
  // the conventional FTL under genuine space pressure.
  MatchedConfig mcfg = MatchedConfig::Bench();
  mcfg.flash.geometry.channels = 2;
  mcfg.flash.geometry.planes_per_channel = 2;
  mcfg.flash.geometry.blocks_per_plane = 128;
  mcfg.flash.geometry.pages_per_block = 32;  // 512 KiB zones.
  mcfg.flash.store_data = true;
  mcfg.ftl.op_fraction = 0.07;

  // Conventional path.
  ConventionalSsd ssd(mcfg.flash, mcfg.ftl);
  ssd.AttachTelemetry(&tel, "conv");
  BlockEnv block_env(&ssd);
  const KvRun conv = RunWorkload(&block_env, ssd.flash(), &tel, "conv.kv");

  // ZNS path.
  ZnsDevice zns(mcfg.flash, mcfg.zns);
  zns.AttachTelemetry(&tel, "zns");
  ZoneFileConfig zf_cfg;
  zf_cfg.finish_remainder_pages = 16;  // Seal nearly-full zones at table boundaries (ZenFS).
  auto fs = ZoneFileSystem::Format(&zns, zf_cfg, 0);
  if (!fs.ok()) {
    std::fprintf(stderr, "format failed: %s\n", fs.status().ToString().c_str());
    return 1;
  }
  fs.value()->AttachTelemetry(&tel, "zns.zonefile");
  ZoneEnv zone_env(fs.value().get());
  const KvRun zoned = RunWorkload(&zone_env, zns.flash(), &tel, "zns.kv");

  TablePrinter table({"metric", "conventional", "ZNS (zonefile)", "ratio"});
  auto row = [&](const char* name, double q) {
    const double c = static_cast<double>(conv.read_latency.Percentile(q)) / kMicrosecond;
    const double z = static_cast<double>(zoned.read_latency.Percentile(q)) / kMicrosecond;
    table.AddRow({name, TablePrinter::Fmt(c), TablePrinter::Fmt(z),
                  z > 0 ? TablePrinter::Fmt(c / z, 1) + "x lower" : "-"});
  };
  row("read p50 (us)", 0.50);
  row("read p90 (us)", 0.90);
  row("read p99 (us)", 0.99);
  row("read p99.9 (us)", 0.999);
  row("read p99.99 (us)", 0.9999);
  table.AddRow({"write throughput (MiB/s)", TablePrinter::Fmt(conv.WriteMiBps()),
                TablePrinter::Fmt(zoned.WriteMiBps()),
                conv.WriteMiBps() > 0
                    ? TablePrinter::Fmt(zoned.WriteMiBps() / conv.WriteMiBps(), 1) + "x higher"
                    : "-"});
  table.AddRow({"device write amplification", TablePrinter::Fmt(conv.device_wa) + "x",
                TablePrinter::Fmt(zoned.device_wa) + "x", ""});
  std::printf("%s\n", table.Render().c_str());

  std::printf("Read latency detail:\n  conventional: %s\n  ZNS:          %s\n",
              conv.read_latency.Summary(kMicrosecond, "us").c_str(),
              zoned.read_latency.Summary(kMicrosecond, "us").c_str());

  // Span-level attribution: where a KV Get's time actually went, measured from plane
  // occupancy while the span was open — not estimated from aggregate counters. The
  // conventional column's `gc wait` is exactly the paper's GC interference.
  auto mean_us = [&](const std::string& name) {
    const Histogram* h = tel.registry.GetHistogram(name);
    return (h == nullptr || h->count() == 0) ? 0.0 : h->Mean() / kMicrosecond;
  };
  TablePrinter attrib(
      {"kv.get component (mean us)", "conventional", "ZNS (zonefile)"});
  auto attrib_row = [&](const char* label, const char* component) {
    attrib.AddRow({label,
                   TablePrinter::Fmt(mean_us(std::string("span.conv.kv.get.") + component)),
                   TablePrinter::Fmt(mean_us(std::string("span.zns.kv.get.") + component))});
  };
  attrib_row("total", "total_ns");
  attrib_row("flash service", "flash_ns");
  attrib_row("queue wait (foreground)", "queue_ns");
  attrib_row("gc wait (interference)", "gc_ns");
  attrib_row("host-side (rest)", "host_ns");
  std::printf("\nPer-op span attribution (from tracing, not estimates):\n%s\n",
              attrib.Render().c_str());

  std::printf("Shape check: conventional read tails inflate with device GC (ratios grow\n"
              "toward the extreme percentiles); ZNS write throughput is higher because flash\n"
              "bandwidth is not consumed by GC copies. The attribution table shows the\n"
              "conventional gc-wait component directly; the ZNS column's is ~0.\n");
  return FinishBench(opts, "bench_tail_latency", tel);
}

int main(int argc, char** argv) {
  return RunBenchMain(argc, argv, "bench_tail_latency", RunBench);
}
