// E4 — §2.4: Western Digital reports "60% lower average read latency and 3x higher throughput"
// for ZNS vs conventional SSDs under mixed load.
//
// Setup: identical TLC flash under both interfaces. The conventional device runs the classic
// block workload (steady-state uniform random 4 KiB writes + reads, 70/30 read/write, QD 4)
// after a full precondition, so device GC is active. The ZNS device runs the equivalent
// ZNS-native pattern: appends into open zones, whole-zone resets for reclamation (no data
// copying), with the same read mix. Reads on the conventional device queue behind GC plane
// activity; reads on the ZNS device only contend with foreground writes.

#include <cstdio>
#include <deque>

#include "bench/bench_main.h"
#include "src/core/matched_pair.h"
#include "src/telemetry/telemetry.h"
#include "src/util/histogram.h"
#include "src/util/rng.h"
#include "src/workload/workload.h"

using namespace blockhead;

namespace {

struct MixResult {
  Histogram read_latency;
  std::uint64_t bytes_total = 0;
  SimTime elapsed = 0;
  double wa = 1.0;

  double Throughput() const { return ToMiBPerSec(bytes_total, elapsed); }
};

constexpr std::uint32_t kQueueDepth = 4;
constexpr double kReadFraction = 0.7;

MixResult RunConventional(std::uint64_t ops, Telemetry* tel) {
  MatchedConfig cfg = MatchedConfig::Bench();
  cfg.ftl.op_fraction = 0.07;
  ConventionalSsd ssd(cfg.flash, cfg.ftl);
  ssd.AttachTelemetry(tel, "conv");
  auto fill = SequentialFill(ssd, 1.0, 0);
  RandomWorkloadConfig wl;
  wl.lba_space = ssd.num_blocks();
  wl.read_fraction = kReadFraction;
  wl.seed = 7;
  RandomWorkload gen(wl);
  DriverOptions opts;
  opts.ops = ops;
  opts.queue_depth = kQueueDepth;
  opts.start_time = fill.value_or(0) + 10 * kMillisecond;
  const RunResult run = RunClosedLoop(ssd, gen, opts);
  MixResult result;
  result.read_latency = run.read_latency;
  result.bytes_total = run.bytes_read + run.bytes_written;
  result.elapsed = run.elapsed();
  result.wa = ssd.WriteAmplification();
  return result;
}

MixResult RunZnsNative(std::uint64_t ops, Telemetry* tel) {
  MatchedConfig cfg = MatchedConfig::Bench();
  ZnsDevice dev(cfg.flash, cfg.zns);
  dev.AttachTelemetry(tel, "zns");
  const std::uint64_t zone_pages = dev.zone_size_pages();
  Rng rng(7);
  MixResult result;

  // Precondition: fill all but two zones so reads have targets and reclamation is active.
  SimTime t = 0;
  std::deque<std::uint32_t> full_zones;
  std::uint32_t open_zone = 0;
  for (std::uint32_t z = 0; z + 2 < dev.num_zones(); ++z) {
    for (std::uint64_t off = 0; off < zone_pages; off += 8) {
      auto w = dev.Write(ZoneId{z}, off, 8, t);
      if (w.ok()) {
        t = w.value();
      }
    }
    full_zones.push_back(z);
    open_zone = z + 1;
  }
  const SimTime start = t + 10 * kMillisecond;
  t = start;

  std::deque<SimTime> outstanding;
  SimTime end = start;
  for (std::uint64_t n = 0; n < ops; ++n) {
    SimTime issue = start;
    if (outstanding.size() >= kQueueDepth) {
      issue = std::max(issue, outstanding.front());
      outstanding.pop_front();
    }
    const bool is_read = rng.NextBool(kReadFraction);
    if (is_read) {
      // Random valid page in a full zone.
      const std::uint32_t zone = full_zones[rng.NextBelow(full_zones.size())];
      const Lba lba =
          dev.zone(ZoneId{zone}).start_lba + rng.NextBelow(dev.zone(ZoneId{zone}).capacity_pages);
      auto r = dev.Read(Lba{lba}, 1, issue);
      if (!r.ok()) {
        continue;
      }
      outstanding.push_back(r.value());
      result.read_latency.Record(r.value() - issue);
      result.bytes_total += 4096;
      end = std::max(end, r.value());
    } else {
      ZoneDescriptor d = dev.zone(ZoneId{open_zone});
      if (d.write_pointer >= d.capacity_pages) {
        full_zones.push_back(open_zone);
        // Reclaim the oldest zone wholesale — the ZNS-native overwrite pattern.
        const std::uint32_t victim = full_zones.front();
        full_zones.pop_front();
        auto reset = dev.ResetZone(ZoneId{victim}, issue);
        open_zone = victim;
        if (reset.ok()) {
          end = std::max(end, reset.value());
        }
        d = dev.zone(ZoneId{open_zone});
      }
      auto w = dev.Write(ZoneId{open_zone}, d.write_pointer, 1, issue);
      if (!w.ok()) {
        continue;
      }
      outstanding.push_back(w.value());
      result.bytes_total += 4096;
      end = std::max(end, w.value());
    }
  }
  result.elapsed = end - start;
  const FlashStats& fs = dev.flash().stats();
  result.wa = static_cast<double>(fs.total_pages_programmed()) /
              static_cast<double>(fs.host_pages_programmed);
  return result;
}

}  // namespace

int RunBench(const BenchOptions& bench_opts, Telemetry& tel) {
  MaybeEnableTimeline(bench_opts, tel);

  std::printf("=== E4: Mixed-load read latency & throughput, conventional vs ZNS-native ===\n");
  std::printf("Paper claim (§2.4, WD): ~60%% lower average read latency, ~3x higher throughput.\n");
  std::printf("Workload: 70/30 R/W uniform 4 KiB, QD %u, steady state, identical TLC flash.\n\n",
              kQueueDepth);

  const std::uint64_t ops = 400000;
  const MixResult conv = RunConventional(ops, &tel);
  const MixResult zns = RunZnsNative(ops, &tel);

  TablePrinter table({"metric", "conventional", "ZNS-native", "delta"});
  const double conv_avg = conv.read_latency.Mean() / kMicrosecond;
  const double zns_avg = zns.read_latency.Mean() / kMicrosecond;
  table.AddRow({"avg read latency (us)", TablePrinter::Fmt(conv_avg),
                TablePrinter::Fmt(zns_avg),
                TablePrinter::Fmt(100.0 * (1.0 - zns_avg / conv_avg), 0) + "% lower"});
  const double conv_p99 = static_cast<double>(conv.read_latency.Percentile(0.99)) / kMicrosecond;
  const double zns_p99 = static_cast<double>(zns.read_latency.Percentile(0.99)) / kMicrosecond;
  table.AddRow({"p99 read latency (us)", TablePrinter::Fmt(conv_p99), TablePrinter::Fmt(zns_p99),
                TablePrinter::Fmt(conv_p99 / zns_p99, 1) + "x lower"});
  table.AddRow({"throughput (MiB/s)", TablePrinter::Fmt(conv.Throughput()),
                TablePrinter::Fmt(zns.Throughput()),
                TablePrinter::Fmt(zns.Throughput() / conv.Throughput(), 1) + "x higher"});
  table.AddRow({"device write amplification", TablePrinter::Fmt(conv.wa) + "x",
                TablePrinter::Fmt(zns.wa) + "x", ""});
  std::printf("%s\n", table.Render().c_str());

  std::printf("Read latency detail:\n  conventional: %s\n  ZNS-native:   %s\n",
              conv.read_latency.Summary(kMicrosecond, "us").c_str(),
              zns.read_latency.Summary(kMicrosecond, "us").c_str());
  std::printf("\nShape check: ZNS average read latency well below conventional (GC-free), and\n"
              "total throughput several times higher (no WA consuming flash bandwidth).\n");
  return FinishBench(bench_opts, "bench_read_latency", tel);
}

int main(int argc, char** argv) {
  return RunBenchMain(argc, argv, "bench_read_latency", RunBench);
}
