// Example: two motivating workloads from the paper's intro on one ZNS device —
//   (1) a zone-per-segment flash cache (CacheLib/RIPQ-style) absorbing a zipfian object load;
//   (2) bursty tenants sharing the device's active-zone budget (§4.2).
//
//   build/examples/flash_cache_tenants [cache_ops] [tenants]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/alloc/zone_budget.h"
#include "src/cache/flash_cache.h"
#include "src/core/matched_pair.h"
#include "src/util/rng.h"

using namespace blockhead;

int main(int argc, char** argv) {
  const std::uint64_t cache_ops = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;
  const std::uint32_t tenants = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 4;

  // --- Part 1: flash cache ---
  std::printf("=== Zone-per-segment flash cache ===\n");
  MatchedConfig cfg = MatchedConfig::Small();
  cfg.zns.max_active_zones = 6;
  cfg.zns.max_open_zones = 6;
  ZnsDevice cache_dev(cfg.flash, cfg.zns);
  ZnsFlashCache cache(&cache_dev, ZnsCacheConfig{});

  ZipfGenerator keys(20000, 0.9, 1);
  Rng rng(2);
  SimTime t = 0;
  for (std::uint64_t n = 0; n < cache_ops; ++n) {
    const std::uint64_t key = keys.Next();
    auto got = cache.Get(key, t);
    if (!got.ok()) {
      std::fprintf(stderr, "get: %s\n", got.status().ToString().c_str());
      return 1;
    }
    t = std::max(t, got->completion);
    if (!got->hit) {
      auto put = cache.Put(key, 2048 + static_cast<std::uint32_t>(rng.NextBelow(14000)), t);
      if (!put.ok()) {
        std::fprintf(stderr, "put: %s\n", put.status().ToString().c_str());
        return 1;
      }
      t = std::max(t, put.value());
    }
  }
  const FlashStats& fs = cache_dev.flash().stats();
  std::printf("ops=%llu hit ratio=%.3f evictions=%llu zone recycles=%llu\n",
              static_cast<unsigned long long>(cache_ops), cache.stats().HitRatio(),
              static_cast<unsigned long long>(cache.stats().evicted_objects),
              static_cast<unsigned long long>(cache.stats().segments_recycled));
  std::printf("device WA=%.2fx (GC copies: %llu) staging DRAM: %llu bytes\n\n",
              static_cast<double>(fs.total_pages_programmed()) /
                  static_cast<double>(fs.host_pages_programmed),
              static_cast<unsigned long long>(fs.internal_pages_programmed),
              static_cast<unsigned long long>(cache.StagingDramBytes()));

  // --- Part 2: multi-tenant zone budgeting ---
  std::printf("=== Bursty tenants sharing the active-zone budget ===\n");
  MatchedConfig mt_cfg = MatchedConfig::Bench();
  mt_cfg.zns.max_active_zones = 14;
  mt_cfg.zns.max_open_zones = 14;
  mt_cfg.zns.planes_per_zone = 4;
  std::vector<TenantConfig> tenant_cfgs(tenants);
  for (std::uint32_t i = 0; i < tenants; ++i) {
    tenant_cfgs[i].seed = i + 1;
    tenant_cfgs[i].desired_zones = 10;
  }

  ZnsDevice dev_a(mt_cfg.flash, mt_cfg.zns);
  StaticPartitionBudget stat(14 / tenants * tenants, tenants);
  const MultiTenantResult r_static = RunMultiTenantSim(dev_a, stat, tenant_cfgs,
                                                       200 * kMillisecond);
  ZnsDevice dev_b(mt_cfg.flash, mt_cfg.zns);
  DemandBudget demand(14, tenants, 1);
  const MultiTenantResult r_demand = RunMultiTenantSim(dev_b, demand, tenant_cfgs,
                                                       200 * kMillisecond);

  std::printf("static partition: %6.1f MiB written, %2.0f%% slot utilization\n",
              static_cast<double>(r_static.total_pages) * 4096 / kMiB,
              100.0 * r_static.slot_utilization);
  std::printf("demand based:     %6.1f MiB written, %2.0f%% slot utilization  (%.2fx)\n",
              static_cast<double>(r_demand.total_pages) * 4096 / kMiB,
              100.0 * r_demand.slot_utilization,
              static_cast<double>(r_demand.total_pages) /
                  static_cast<double>(r_static.total_pages));
  return 0;
}
