// Example: interactive workload explorer — run a synthetic pattern or an inline I/O trace
// against both device classes and compare.
//
//   build/examples/workload_explorer <pattern> [ops] [read_fraction]
//     pattern: seq | rand | zipf | trace
//
// With `trace`, a small built-in demonstration trace is used (see kDemoTrace below for the
// format; real traces are plain text: "<R|W|T>,<lba>,<pages>" per line, parsed by
// blockhead::ParseTrace).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "src/core/matched_pair.h"
#include "src/hostftl/host_ftl.h"
#include "src/workload/trace.h"
#include "src/workload/workload.h"

using namespace blockhead;

namespace {

constexpr const char* kDemoTrace =
    "# demo: metadata-update pattern — hot page rewrites mixed with sequential data\n"
    "W,0,1\n"
    "W,1,1\n"
    "W,4096,32\n"
    "W,0,1\n"
    "W,4128,32\n"
    "W,1,1\n"
    "R,4096,8\n"
    "W,0,1\n"
    "T,4096,32\n";

}  // namespace

int main(int argc, char** argv) {
  const std::string pattern = argc > 1 ? argv[1] : "rand";
  const std::uint64_t ops = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200000;
  const double read_fraction = argc > 3 ? std::atof(argv[3]) : 0.5;

  auto make_generator = [&](std::uint64_t lba_space) -> std::unique_ptr<WorkloadGenerator> {
    if (pattern == "seq") {
      return std::make_unique<SequentialWorkload>(lba_space, 8, IoType::kWrite);
    }
    if (pattern == "trace") {
      auto parsed = ParseTrace(kDemoTrace);
      if (!parsed.ok()) {
        std::fprintf(stderr, "trace parse: %s\n", parsed.status().ToString().c_str());
        std::exit(1);
      }
      return std::make_unique<TraceWorkload>(parsed.value());
    }
    RandomWorkloadConfig cfg;
    cfg.lba_space = lba_space;
    cfg.read_fraction = read_fraction;
    cfg.distribution =
        pattern == "zipf" ? AddressDistribution::kZipfian : AddressDistribution::kUniform;
    cfg.seed = 42;
    return std::make_unique<RandomWorkload>(cfg);
  };

  std::printf("Pattern '%s', %llu ops, identical 2 GiB TLC flash under both interfaces.\n\n",
              pattern.c_str(), static_cast<unsigned long long>(ops));

  TablePrinter table({"device", "MiB/s", "read p50/p99 (us)", "write p50/p99 (us)",
                      "device WA", "flash GC copies"});
  auto fmt_lat = [](const Histogram& h) {
    if (h.count() == 0) {
      return std::string("-");
    }
    return TablePrinter::Fmt(static_cast<double>(h.Percentile(0.5)) / kMicrosecond, 0) + " / " +
           TablePrinter::Fmt(static_cast<double>(h.Percentile(0.99)) / kMicrosecond, 0);
  };

  {
    MatchedConfig cfg = MatchedConfig::Bench();
    ConventionalSsd ssd(cfg.flash, cfg.ftl);
    auto fill = SequentialFill(ssd, 1.0, 0);
    auto gen = make_generator(ssd.num_blocks());
    DriverOptions opts;
    opts.ops = ops;
    opts.queue_depth = 4;
    opts.start_time = fill.value_or(0) + 10 * kMillisecond;
    const RunResult run = RunClosedLoop(ssd, *gen, opts);
    if (!run.status.ok()) {
      std::fprintf(stderr, "conventional run: %s\n", run.status.ToString().c_str());
      return 1;
    }
    table.AddRow({"conventional SSD", TablePrinter::Fmt(run.TotalMiBps()),
                  fmt_lat(run.read_latency), fmt_lat(run.write_latency),
                  TablePrinter::Fmt(ssd.WriteAmplification()) + "x",
                  std::to_string(ssd.ftl_stats().gc_pages_copied)});
  }
  {
    MatchedConfig cfg = MatchedConfig::Bench();
    ZnsDevice dev(cfg.flash, cfg.zns);
    HostFtlBlockDevice block(&dev, HostFtlConfig{});
    auto fill = SequentialFill(block, 1.0, 0);
    auto gen = make_generator(block.num_blocks());
    DriverOptions opts;
    opts.ops = ops;
    opts.queue_depth = 4;
    opts.start_time = fill.value_or(0) + 10 * kMillisecond;
    opts.maintenance_hook = [&block](SimTime now, bool reads) { block.Pump(now, reads, 1); };
    const RunResult run = RunClosedLoop(block, *gen, opts);
    if (!run.status.ok()) {
      std::fprintf(stderr, "zns run: %s\n", run.status.ToString().c_str());
      return 1;
    }
    table.AddRow({"block-on-ZNS (host FTL)", TablePrinter::Fmt(run.TotalMiBps()),
                  fmt_lat(run.read_latency), fmt_lat(run.write_latency),
                  TablePrinter::Fmt(block.EndToEndWriteAmplification()) + "x",
                  std::to_string(block.stats().gc_pages_copied)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Try: seq | rand | zipf | trace, e.g. `workload_explorer zipf 300000 0.8`.\n");
  return 0;
}
