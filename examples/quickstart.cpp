// Quickstart: the ZNS device API in one tour.
//
//   build/examples/quickstart
//
// Creates a small emulated ZNS SSD, walks a zone through its lifecycle (write, append, read,
// finish, reset), trips the write-pointer and active-zone rules on purpose, uses simple copy,
// and prints the mapping-DRAM comparison against a conventional SSD built on identical flash.

#include <cstdio>
#include <vector>

#include "src/core/matched_pair.h"

using namespace blockhead;

int main() {
  // Two devices over identical flash: 32 MiB, 4 planes, TLC-class timing.
  MatchedConfig cfg = MatchedConfig::Small();
  cfg.flash.timing = FlashTiming::Tlc();
  cfg.zns.max_active_zones = 4;
  cfg.zns.max_open_zones = 4;
  MatchedPair pair = MakeMatchedPair(cfg);
  ZnsDevice& zns = *pair.zns;

  std::printf("Device: %u zones x %llu pages (%s total), max %u active zones\n\n", zns.num_zones(),
              static_cast<unsigned long long>(zns.zone_size_pages()),
              TablePrinter::FmtBytes(zns.capacity_bytes()).c_str(),
              zns.config().max_active_zones);

  // 1. Sequential writes must land exactly on the write pointer.
  std::vector<std::uint8_t> data(4096, 0xAB);
  auto w = zns.Write(ZoneId{/*zone=*/0}, /*offset=*/0, /*pages=*/1, /*issue=*/0, data);
  std::printf("write zone 0 @0      -> %s (zone now %s, wp=%llu)\n",
              w.ok() ? "OK" : w.status().ToString().c_str(),
              ZoneStateName(zns.zone(ZoneId{0}).state),
              static_cast<unsigned long long>(zns.zone(ZoneId{0}).write_pointer));

  auto bad = zns.Write(ZoneId{0}, 5, 1, 0);  // Not at the write pointer.
  std::printf("write zone 0 @5      -> %s (the block-interface habit fails fast)\n",
              bad.status().ToString().c_str());

  // 2. Zone append: the device picks the address (no host-side write-pointer coordination).
  auto a = zns.Append(ZoneId{0}, 2, 0, {});
  if (a.ok()) {
    std::printf("append zone 0 x2     -> OK, device assigned LBA %llu\n",
                static_cast<unsigned long long>(a->assigned_lba.value()));
  }

  // 3. Reads below the write pointer return data; above it, zeroes.
  std::vector<std::uint8_t> out(4096);
  auto r = zns.Read(zns.zone(ZoneId{0}).start_lba, 1, 1 * kMillisecond, out);
  std::printf("read  zone 0 @0      -> %s, first byte 0x%02X (latency %.1f us)\n",
              r.ok() ? "OK" : r.status().ToString().c_str(), out[0],
              r.ok() ? static_cast<double>(r.value() - 1 * kMillisecond) / kMicrosecond : 0.0);

  // 4. Active-zone limits are a real resource (paper §4.2).
  for (std::uint32_t z = 1; z <= 4; ++z) {
    auto open = zns.Write(ZoneId{z}, 0, 1, 0);
    std::printf("write zone %u @0      -> %s (active zones: %u)\n", z,
                open.ok() ? "OK" : open.status().ToString().c_str(), zns.active_zones());
  }

  // 5. Simple copy: device-internal relocation, zero host-bus bytes.
  const std::uint64_t bus_before = zns.flash().stats().host_bus_bytes;
  const CopyRange range{zns.zone(ZoneId{0}).start_lba, 3};
  auto copy = zns.SimpleCopy(std::span<const CopyRange>(&range, 1), ZoneId{1}, 0);
  std::printf("simple copy 3 pages  -> %s, host-bus bytes moved: %llu\n",
              copy.ok() ? "OK" : copy.status().ToString().c_str(),
              static_cast<unsigned long long>(zns.flash().stats().host_bus_bytes - bus_before));

  // 6. Finish seals a zone early; reset recycles it.
  (void)zns.FinishZone(ZoneId{0}, 0);
  std::printf("finish zone 0        -> state %s, wp=%llu\n",
              ZoneStateName(zns.zone(ZoneId{0}).state),
              static_cast<unsigned long long>(zns.zone(ZoneId{0}).write_pointer));
  auto reset = zns.ResetZone(ZoneId{0}, 0);
  std::printf("reset  zone 0        -> %s, state %s (erases counted: %llu)\n",
              reset.ok() ? "OK" : reset.status().ToString().c_str(),
              ZoneStateName(zns.zone(ZoneId{0}).state),
              static_cast<unsigned long long>(zns.flash().stats().blocks_erased));

  // 7. The paper's §2.2 DRAM argument, on these two devices.
  const DramUsage conv = pair.conventional->ComputeDramUsage();
  const DramUsage z = zns.ComputeDramUsage();
  std::printf("\nMapping-table DRAM on identical %s flash:\n",
              TablePrinter::FmtBytes(cfg.flash.geometry.capacity_bytes()).c_str());
  std::printf("  conventional (4 B/page):  %s\n",
              TablePrinter::FmtBytes(conv.mapping_bytes).c_str());
  std::printf("  ZNS (4 B/erasure block):  %s\n", TablePrinter::FmtBytes(z.mapping_bytes).c_str());
  return 0;
}
