// Example: the mini-LSM KV store running on the ZenFS-style zoned filesystem, including crash
// recovery.
//
//   build/examples/kvstore_on_zns [num_keys]
//
// Loads a keyspace, overwrites part of it, "crashes" (drops all in-memory state), remounts the
// filesystem from its on-device journal, reopens the store, and verifies the data — then
// prints the LSM/device statistics that make the ZNS case (lifetime-hinted files, WA ~1).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/matched_pair.h"
#include "src/kv/kv_store.h"

using namespace blockhead;

namespace {

std::string KeyOf(std::uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%08llu", static_cast<unsigned long long>(n));
  return buf;
}

std::string ValueOf(std::uint64_t n, const char* generation) {
  return std::string(generation) + "-value-" + std::to_string(n) +
         std::string(80, static_cast<char>('a' + n % 26));
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t num_keys = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;

  MatchedConfig cfg = MatchedConfig::Small();
  cfg.zns.max_active_zones = 10;
  cfg.zns.max_open_zones = 10;
  ZnsDevice device(cfg.flash, cfg.zns);

  ZoneFileConfig fs_cfg;
  auto fs = ZoneFileSystem::Format(&device, fs_cfg, 0);
  if (!fs.ok()) {
    std::fprintf(stderr, "format: %s\n", fs.status().ToString().c_str());
    return 1;
  }
  std::printf("Formatted zonefile on %u zones (%s)\n", device.num_zones(),
              TablePrinter::FmtBytes(device.capacity_bytes()).c_str());

  KvConfig kv_cfg;
  kv_cfg.memtable_bytes = 32 * kKiB;
  kv_cfg.level_base_bytes = 512 * kKiB;
  {
    ZoneEnv env(fs.value().get());
    auto store = KvStore::Open(&env, kv_cfg, 0);
    if (!store.ok()) {
      std::fprintf(stderr, "open: %s\n", store.status().ToString().c_str());
      return 1;
    }
    SimTime t = 0;
    for (std::uint64_t i = 0; i < num_keys; ++i) {
      auto p = store.value()->Put(KeyOf(i), ValueOf(i, "gen1"), t);
      if (!p.ok()) {
        std::fprintf(stderr, "put: %s\n", p.status().ToString().c_str());
        return 1;
      }
      t = std::max(t, p.value());
    }
    // Overwrite a third of the keys, delete a few.
    for (std::uint64_t i = 0; i < num_keys / 3; ++i) {
      (void)store.value()->Put(KeyOf(i * 3), ValueOf(i * 3, "gen2"), t);
    }
    for (std::uint64_t i = 0; i < 100; ++i) {
      (void)store.value()->Delete(KeyOf(i * 7 + 1), t);
    }
    (void)store.value()->Flush(t);  // Make everything durable.

    const KvStats& stats = store.value()->stats();
    std::printf("\nBefore crash: %llu puts, %llu flushes, %llu compactions, LSM WA %.2fx\n",
                static_cast<unsigned long long>(stats.puts),
                static_cast<unsigned long long>(stats.flushes),
                static_cast<unsigned long long>(stats.compactions),
                store.value()->LsmWriteAmplification());
    const auto levels = store.value()->LevelTableCounts();
    std::printf("Level table counts:");
    for (std::size_t l = 0; l < levels.size(); ++l) {
      std::printf(" L%zu=%u", l, levels[l]);
    }
    std::printf("\n");
  }

  // --- CRASH: every host structure is gone; only the device contents survive. ---
  fs.value().reset();
  std::printf("\n*** crash: all host state dropped; remounting from the device journal ***\n\n");

  auto remounted = ZoneFileSystem::Mount(&device, fs_cfg, 0);
  if (!remounted.ok()) {
    std::fprintf(stderr, "mount: %s\n", remounted.status().ToString().c_str());
    return 1;
  }
  ZoneEnv env(remounted.value().get());
  auto store = KvStore::Open(&env, kv_cfg, 0);
  if (!store.ok()) {
    std::fprintf(stderr, "reopen: %s\n", store.status().ToString().c_str());
    return 1;
  }

  // Verify.
  std::uint64_t checked = 0;
  std::uint64_t wrong = 0;
  for (std::uint64_t i = 0; i < num_keys; i += 97) {
    auto got = store.value()->Get(KeyOf(i), 0);
    if (!got.ok()) {
      std::fprintf(stderr, "get: %s\n", got.status().ToString().c_str());
      return 1;
    }
    const bool deleted = i % 7 == 1 && (i - 1) / 7 < 100;
    const std::string expect =
        i % 3 == 0 ? ValueOf(i, "gen2") : ValueOf(i, "gen1");
    if (deleted) {
      wrong += got->found ? 1 : 0;
    } else {
      wrong += (!got->found || got->value != expect) ? 1 : 0;
    }
    ++checked;
  }
  std::printf("Recovery check: %llu keys sampled, %llu mismatches\n",
              static_cast<unsigned long long>(checked), static_cast<unsigned long long>(wrong));

  const FlashStats& flash = device.flash().stats();
  std::printf("\nDevice: %llu host pages programmed, %llu GC/internal pages, device WA %.2fx\n",
              static_cast<unsigned long long>(flash.host_pages_programmed),
              static_cast<unsigned long long>(flash.internal_pages_programmed),
              static_cast<double>(flash.total_pages_programmed()) /
                  static_cast<double>(flash.host_pages_programmed));
  std::printf("zonefile: %llu zone resets, %llu pages relocated by compaction\n",
              static_cast<unsigned long long>(device.stats().zone_resets),
              static_cast<unsigned long long>(remounted.value()->stats().gc_pages_copied));
  return wrong == 0 ? 0 : 1;
}
