// Example: a conventional block device reconstructed on a ZNS SSD by the host FTL (the
// dm-zoned role from §2.3), with a selectable GC scheduling policy.
//
//   build/examples/block_on_zns [policy] [ops]
//     policy: inline | background | read-priority | rate-limited   (default background)
//
// Runs a mixed random workload through the emulated block device and prints the numbers a
// conventional SSD would never let you see: host GC activity, relocation volume, bus traffic
// saved by simple copy, and the latency profile under YOUR chosen reclamation policy.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/core/matched_pair.h"
#include "src/hostftl/host_ftl.h"
#include "src/workload/workload.h"

using namespace blockhead;

int main(int argc, char** argv) {
  GcSchedPolicy policy = GcSchedPolicy::kBackground;
  if (argc > 1) {
    if (std::strcmp(argv[1], "inline") == 0) {
      policy = GcSchedPolicy::kInline;
    } else if (std::strcmp(argv[1], "background") == 0) {
      policy = GcSchedPolicy::kBackground;
    } else if (std::strcmp(argv[1], "read-priority") == 0) {
      policy = GcSchedPolicy::kReadPriority;
    } else if (std::strcmp(argv[1], "rate-limited") == 0) {
      policy = GcSchedPolicy::kRateLimited;
    } else {
      std::fprintf(stderr, "unknown policy '%s'\n", argv[1]);
      return 1;
    }
  }
  const std::uint64_t ops = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 300000;

  MatchedConfig cfg = MatchedConfig::Bench();
  ZnsDevice device(cfg.flash, cfg.zns);
  HostFtlConfig ftl_cfg;
  ftl_cfg.op_fraction = 0.20;
  ftl_cfg.use_simple_copy = true;
  ftl_cfg.sched.policy = policy;
  HostFtlBlockDevice block(&device, ftl_cfg);

  std::printf("Block device on ZNS: %llu logical 4K blocks (%s) over %u zones; policy=%s\n",
              static_cast<unsigned long long>(block.num_blocks()),
              TablePrinter::FmtBytes(block.capacity_bytes()).c_str(), device.num_zones(),
              GcSchedPolicyName(policy));

  auto fill = SequentialFill(block, 1.0, 0);
  if (!fill.ok()) {
    std::fprintf(stderr, "fill: %s\n", fill.status().ToString().c_str());
    return 1;
  }
  std::printf("Preconditioned (sequential fill). Running %llu mixed ops (60%% reads)...\n\n",
              static_cast<unsigned long long>(ops));

  RandomWorkloadConfig wl;
  wl.lba_space = block.num_blocks();
  wl.read_fraction = 0.6;
  wl.seed = 99;
  RandomWorkload gen(wl);
  DriverOptions opts;
  opts.ops = ops;
  opts.queue_depth = 4;
  opts.start_time = fill.value() + 10 * kMillisecond;
  opts.maintenance_hook = [&block](SimTime now, bool reads) { block.Pump(now, reads, 1); };
  const RunResult run = RunClosedLoop(block, gen, opts);
  if (!run.status.ok()) {
    std::fprintf(stderr, "run: %s\n", run.status.ToString().c_str());
    return 1;
  }

  std::printf("reads : %s\n", run.read_latency.Summary(kMicrosecond, "us").c_str());
  std::printf("writes: %s\n", run.write_latency.Summary(kMicrosecond, "us").c_str());
  std::printf("throughput: %.1f MiB/s\n\n", run.TotalMiBps());

  const HostFtlStats& stats = block.stats();
  std::printf("What the host can now see and control (opaque inside a conventional SSD):\n");
  std::printf("  zones reclaimed:        %llu\n",
              static_cast<unsigned long long>(stats.zones_reclaimed));
  std::printf("  pages relocated:        %llu (write amplification %.2fx)\n",
              static_cast<unsigned long long>(stats.gc_pages_copied),
              block.EndToEndWriteAmplification());
  std::printf("  GC bytes over PCIe:     %llu (simple copy keeps relocation on-device)\n",
              static_cast<unsigned long long>(stats.gc_host_bus_bytes));
  std::printf("  forced (emergency) GCs: %llu\n",
              static_cast<unsigned long long>(stats.forced_gc_stalls));
  std::printf("  host mapping tables:    %s of host DRAM\n",
              TablePrinter::FmtBytes(block.HostMappingBytes()).c_str());
  return 0;
}
