// Unit + property tests for the conventional (page-mapped, garbage-collecting) SSD.

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <vector>

#include "src/ftl/conventional_ssd.h"
#include "src/util/rng.h"

namespace blockhead {
namespace {

FlashConfig SmallFlash() {
  FlashConfig c;
  c.geometry = FlashGeometry::Small();
  c.timing = FlashTiming::FastForTests();
  return c;
}

FtlConfig DefaultFtl() {
  FtlConfig f;
  f.op_fraction = 0.15;
  return f;
}

std::vector<std::uint8_t> Pattern(std::uint32_t page_size, std::uint8_t tag) {
  std::vector<std::uint8_t> v(page_size);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<std::uint8_t>(tag + i);
  }
  return v;
}

TEST(ConventionalSsdTest, ExportsReducedLogicalCapacity) {
  ConventionalSsd ssd(SmallFlash(), DefaultFtl());
  const std::uint64_t physical = ssd.flash().geometry().total_pages();
  EXPECT_LT(ssd.num_blocks(), physical);
  EXPECT_GT(ssd.num_blocks(), physical / 2);
  EXPECT_EQ(ssd.block_size(), 4096u);
}

TEST(ConventionalSsdTest, ZeroOpStillLeavesHardReserve) {
  FtlConfig f = DefaultFtl();
  f.op_fraction = 0.0;
  ConventionalSsd ssd(SmallFlash(), f);
  const FlashGeometry& g = ssd.flash().geometry();
  EXPECT_EQ(ssd.num_blocks(),
            g.total_pages() - static_cast<std::uint64_t>(f.min_reserve_blocks_per_plane) *
                                  g.total_planes() * g.pages_per_block);
}

TEST(ConventionalSsdTest, ReadYourWrite) {
  ConventionalSsd ssd(SmallFlash(), DefaultFtl());
  const auto data = Pattern(4096, 7);
  auto w = ssd.WriteBlocks(Lba{42}, 1, 0, data);
  ASSERT_TRUE(w.ok());
  std::vector<std::uint8_t> out(4096);
  auto r = ssd.ReadBlocks(Lba{42}, 1, w.value(), out);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
}

TEST(ConventionalSsdTest, OverwriteReturnsNewestData) {
  ConventionalSsd ssd(SmallFlash(), DefaultFtl());
  SimTime t = 0;
  for (std::uint8_t tag = 0; tag < 5; ++tag) {
    auto w = ssd.WriteBlocks(Lba{10}, 1, t, Pattern(4096, tag));
    ASSERT_TRUE(w.ok());
    t = w.value();
  }
  std::vector<std::uint8_t> out(4096);
  ASSERT_TRUE(ssd.ReadBlocks(Lba{10}, 1, t, out).ok());
  EXPECT_EQ(out, Pattern(4096, 4));
}

TEST(ConventionalSsdTest, UnwrittenLbaReadsZeros) {
  ConventionalSsd ssd(SmallFlash(), DefaultFtl());
  std::vector<std::uint8_t> out(4096, 0xEE);
  auto r = ssd.ReadBlocks(Lba{100}, 1, 0, out);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, std::vector<std::uint8_t>(4096, 0));
}

TEST(ConventionalSsdTest, OutOfRangeRejected) {
  ConventionalSsd ssd(SmallFlash(), DefaultFtl());
  const std::uint64_t n = ssd.num_blocks();
  EXPECT_EQ(ssd.WriteBlocks(Lba{n}, 1, 0).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(ssd.ReadBlocks(Lba{n - 1}, 2, 0).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(ssd.TrimBlocks(Lba{n}, 1, 0).code(), ErrorCode::kOutOfRange);
}

TEST(ConventionalSsdTest, MultiPageWriteAndRead) {
  ConventionalSsd ssd(SmallFlash(), DefaultFtl());
  std::vector<std::uint8_t> data(4 * 4096);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31);
  }
  auto w = ssd.WriteBlocks(Lba{5}, 4, 0, data);
  ASSERT_TRUE(w.ok());
  std::vector<std::uint8_t> out(4 * 4096);
  ASSERT_TRUE(ssd.ReadBlocks(Lba{5}, 4, w.value(), out).ok());
  EXPECT_EQ(out, data);
}

TEST(ConventionalSsdTest, SequentialFillHasUnitWriteAmplification) {
  ConventionalSsd ssd(SmallFlash(), DefaultFtl());
  SimTime t = 0;
  // One sequential pass over the logical space: no overwrites, no GC needed.
  for (std::uint64_t lba = 0; lba < ssd.num_blocks(); lba += 8) {
    const std::uint32_t n = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        8, ssd.num_blocks() - lba));
    auto w = ssd.WriteBlocks(Lba{lba}, n, t);
    ASSERT_TRUE(w.ok());
    t = w.value();
  }
  EXPECT_DOUBLE_EQ(ssd.WriteAmplification(), 1.0);
  EXPECT_EQ(ssd.ftl_stats().gc_pages_copied, 0u);
}

TEST(ConventionalSsdTest, RandomOverwritesTriggerGcAndAmplify) {
  FlashConfig fc = SmallFlash();
  fc.store_data = false;
  ConventionalSsd ssd(fc, DefaultFtl());
  Rng rng(1);
  SimTime t = 0;
  const std::uint64_t n = ssd.num_blocks();
  // Write 3x the logical capacity randomly: device must GC.
  for (std::uint64_t i = 0; i < 3 * n; ++i) {
    auto w = ssd.WriteBlocks(Lba{rng.NextBelow(n)}, 1, t);
    ASSERT_TRUE(w.ok());
    t = w.value();
  }
  EXPECT_GT(ssd.ftl_stats().gc_runs, 0u);
  EXPECT_GT(ssd.ftl_stats().gc_pages_copied, 0u);
  EXPECT_GT(ssd.WriteAmplification(), 1.2);
  EXPECT_TRUE(ssd.CheckConsistency().ok());
}

TEST(ConventionalSsdTest, MoreOverprovisioningMeansLessWriteAmplification) {
  double wa_low_op = 0.0;
  double wa_high_op = 0.0;
  for (const double op : {0.0, 0.28}) {
    FlashConfig fc = SmallFlash();
    fc.store_data = false;
    FtlConfig f;
    f.op_fraction = op;
    ConventionalSsd ssd(fc, f);
    Rng rng(2);
    SimTime t = 0;
    const std::uint64_t n = ssd.num_blocks();
    for (std::uint64_t i = 0; i < 4 * n; ++i) {
      auto w = ssd.WriteBlocks(Lba{rng.NextBelow(n)}, 1, t);
      ASSERT_TRUE(w.ok());
      t = w.value();
    }
    (op == 0.0 ? wa_low_op : wa_high_op) = ssd.WriteAmplification();
  }
  EXPECT_GT(wa_low_op, wa_high_op * 1.5) << "0% OP should amplify much more than 28% OP";
}

TEST(ConventionalSsdTest, TrimReducesGcWork) {
  FlashConfig fc = SmallFlash();
  fc.store_data = false;
  FtlConfig f = DefaultFtl();

  auto run = [&](bool trim_between_rounds) {
    ConventionalSsd ssd(fc, f);
    Rng rng(3);
    SimTime t = 0;
    const std::uint64_t n = ssd.num_blocks();
    for (int round = 0; round < 4; ++round) {
      for (std::uint64_t i = 0; i < n; ++i) {
        auto w = ssd.WriteBlocks(Lba{rng.NextBelow(n)}, 1, t);
        EXPECT_TRUE(w.ok());
        t = w.value();
      }
      if (trim_between_rounds) {
        EXPECT_TRUE(ssd.TrimBlocks(Lba{0}, static_cast<std::uint32_t>(n / 2), t).ok());
      }
    }
    return ssd.WriteAmplification();
  };

  EXPECT_LT(run(true), run(false));
}

TEST(ConventionalSsdTest, GcPreservesAllLiveData) {
  // Small device, heavy churn, real data: after many random overwrites every LBA must still
  // read back its most recent value.
  ConventionalSsd ssd(SmallFlash(), DefaultFtl());
  Rng rng(4);
  SimTime t = 0;
  const std::uint64_t n = ssd.num_blocks();
  std::map<std::uint64_t, std::uint8_t> truth;
  for (std::uint64_t i = 0; i < 2 * n; ++i) {
    const std::uint64_t lba = rng.NextBelow(n);
    const std::uint8_t tag = static_cast<std::uint8_t>(rng.Next());
    auto w = ssd.WriteBlocks(Lba{lba}, 1, t, Pattern(4096, tag));
    ASSERT_TRUE(w.ok());
    t = w.value();
    truth[lba] = tag;
  }
  ASSERT_GT(ssd.ftl_stats().gc_runs, 0u) << "test needs GC to actually run";
  std::vector<std::uint8_t> out(4096);
  for (const auto& [lba, tag] : truth) {
    ASSERT_TRUE(ssd.ReadBlocks(Lba{lba}, 1, t, out).ok());
    ASSERT_EQ(out, Pattern(4096, tag)) << "lba " << lba;
  }
  EXPECT_TRUE(ssd.CheckConsistency().ok());
}

TEST(ConventionalSsdTest, ForegroundGcDelaysColocatedReads) {
  // Fill the device, then overwrite to force foreground GC; a read issued right after a
  // GC-triggering write should see inflated latency vs an idle-device read.
  FlashConfig fc = SmallFlash();
  fc.store_data = false;
  fc.timing = FlashTiming::Tlc();
  FtlConfig f;
  f.op_fraction = 0.07;
  ConventionalSsd ssd(fc, f);
  Rng rng(5);
  SimTime t = 0;
  const std::uint64_t n = ssd.num_blocks();

  auto idle_read = ssd.ReadBlocks(Lba{0}, 1, 0);
  ASSERT_TRUE(idle_read.ok());
  const SimTime idle_latency = idle_read.value();

  SimTime max_read_latency = 0;
  for (std::uint64_t i = 0; i < 3 * n; ++i) {
    auto w = ssd.WriteBlocks(Lba{rng.NextBelow(n)}, 1, t);
    ASSERT_TRUE(w.ok());
    if (i % 16 == 0) {
      auto r = ssd.ReadBlocks(Lba{rng.NextBelow(n)}, 1, t);
      ASSERT_TRUE(r.ok());
      max_read_latency = std::max(max_read_latency, r.value() - t);
    }
    t = std::max(t, w.value());
  }
  ASSERT_GT(ssd.ftl_stats().foreground_gc_stalls, 0u);
  EXPECT_GT(max_read_latency, 4 * idle_latency)
      << "device GC should visibly inflate read tail latency";
}

TEST(ConventionalSsdTest, BackgroundGcReducesForegroundStalls) {
  FlashConfig fc = SmallFlash();
  fc.store_data = false;

  auto stalls = [&](bool background) {
    ConventionalSsd ssd(fc, DefaultFtl());
    Rng rng(6);
    SimTime t = 0;
    const std::uint64_t n = ssd.num_blocks();
    for (std::uint64_t i = 0; i < 3 * n; ++i) {
      auto w = ssd.WriteBlocks(Lba{rng.NextBelow(n)}, 1, t);
      EXPECT_TRUE(w.ok());
      t = w.value();
      if (background && i % 8 == 0) {
        ssd.RunBackgroundGc(t, 2);
      }
    }
    return ssd.ftl_stats().foreground_gc_stalls;
  };

  EXPECT_LT(stalls(true), stalls(false));
}

TEST(ConventionalSsdTest, WearLevelingNarrowsEraseSpread) {
  FlashConfig fc = SmallFlash();
  fc.store_data = false;

  auto spread = [&](bool wl) {
    FtlConfig f = DefaultFtl();
    f.wear_leveling = wl;
    ConventionalSsd ssd(fc, f);
    // Skewed workload: hammer 10% of the logical space.
    const std::uint64_t n = ssd.num_blocks();
    Rng rng(7);
    SimTime t = 0;
    // Fill everything once (cold data), then hammer the hot set.
    for (std::uint64_t lba = 0; lba < n; ++lba) {
      auto w = ssd.WriteBlocks(Lba{lba}, 1, t);
      EXPECT_TRUE(w.ok());
      t = w.value();
    }
    for (std::uint64_t i = 0; i < 6 * n; ++i) {
      auto w = ssd.WriteBlocks(Lba{rng.NextBelow(n / 10)}, 1, t);
      EXPECT_TRUE(w.ok());
      t = w.value();
    }
    const WearSummary w = ssd.flash().ComputeWear();
    return w.stddev_erase_count / std::max(1.0, w.mean_erase_count);
  };

  EXPECT_LT(spread(true), spread(false));
}

TEST(ConventionalSsdTest, DramUsageMatchesPaperModel) {
  ConventionalSsd ssd(SmallFlash(), DefaultFtl());
  const DramUsage u = ssd.ComputeDramUsage();
  EXPECT_EQ(u.mapping_bytes, ssd.num_blocks() * 4);
  EXPECT_GT(u.gc_metadata_bytes, 0u);
  EXPECT_GT(u.total(), u.mapping_bytes);
}

TEST(ConventionalSsdTest, WriteBufferAcksBeforeProgramCompletes) {
  FlashConfig fc = SmallFlash();
  fc.timing = FlashTiming::Tlc();
  FtlConfig f = DefaultFtl();
  f.write_buffer_pages = 64;
  ConventionalSsd ssd(fc, f);
  auto w = ssd.WriteBlocks(Lba{0}, 1, 0);
  ASSERT_TRUE(w.ok());
  // Ack at data-in (channel transfer), long before the ~660us cell program.
  EXPECT_LT(w.value(), fc.timing.page_program);
}

TEST(ConventionalSsdTest, WriteBufferBackpressuresWhenFull) {
  FlashConfig fc = SmallFlash();
  fc.timing = FlashTiming::Tlc();
  FtlConfig f = DefaultFtl();
  f.write_buffer_pages = 2;
  ConventionalSsd ssd(fc, f);
  SimTime last_ack = 0;
  for (int i = 0; i < 16; ++i) {
    auto w = ssd.WriteBlocks(Lba{static_cast<std::uint64_t>(i)}, 1, 0);
    ASSERT_TRUE(w.ok());
    last_ack = std::max(last_ack, w.value());
  }
  // With a 2-page buffer, the 16th ack must wait for earlier programs.
  EXPECT_GT(last_ack, fc.timing.page_program);
}

TEST(ConventionalSsdTest, CostBenefitPolicyAlsoPreservesData) {
  FlashConfig fc = SmallFlash();
  FtlConfig f = DefaultFtl();
  f.victim_policy = GcVictimPolicy::kCostBenefit;
  ConventionalSsd ssd(fc, f);
  Rng rng(8);
  SimTime t = 0;
  const std::uint64_t n = ssd.num_blocks();
  std::map<std::uint64_t, std::uint8_t> truth;
  for (std::uint64_t i = 0; i < 2 * n; ++i) {
    const std::uint64_t lba = rng.NextBelow(n);
    const std::uint8_t tag = static_cast<std::uint8_t>(rng.Next());
    auto w = ssd.WriteBlocks(Lba{lba}, 1, t, Pattern(4096, tag));
    ASSERT_TRUE(w.ok());
    t = w.value();
    truth[lba] = tag;
  }
  EXPECT_GT(ssd.ftl_stats().gc_runs, 0u);
  std::vector<std::uint8_t> out(4096);
  for (const auto& [lba, tag] : truth) {
    ASSERT_TRUE(ssd.ReadBlocks(Lba{lba}, 1, t, out).ok());
    ASSERT_EQ(out, Pattern(4096, tag));
  }
  EXPECT_TRUE(ssd.CheckConsistency().ok());
}

// Property sweep: for several OP fractions, random churn never corrupts the L2P state and WA
// stays within sane bounds (>= 1, finite).
class OpSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(OpSweepTest, ChurnKeepsInvariants) {
  FlashConfig fc = SmallFlash();
  fc.store_data = false;
  FtlConfig f;
  f.op_fraction = GetParam();
  ConventionalSsd ssd(fc, f);
  Rng rng(10);
  SimTime t = 0;
  const std::uint64_t n = ssd.num_blocks();
  for (std::uint64_t i = 0; i < 3 * n; ++i) {
    const std::uint64_t lba = rng.NextBelow(n);
    if (rng.NextBool(0.05)) {
      ASSERT_TRUE(ssd.TrimBlocks(Lba{lba}, 1, t).ok());
      continue;
    }
    auto w = ssd.WriteBlocks(Lba{lba}, 1, t);
    ASSERT_TRUE(w.ok());
    t = w.value();
  }
  EXPECT_GE(ssd.WriteAmplification(), 1.0);
  EXPECT_LT(ssd.WriteAmplification(), 100.0);
  EXPECT_TRUE(ssd.CheckConsistency().ok());
}

INSTANTIATE_TEST_SUITE_P(OpFractions, OpSweepTest,
                         ::testing::Values(0.0, 0.07, 0.125, 0.25, 0.28));

}  // namespace
}  // namespace blockhead
