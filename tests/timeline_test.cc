// Tests for the deterministic timeline and event log: same-seed byte-identical exports,
// stable ordering of records at equal SimTime, bounded-ring eviction, sampling-grid
// semantics (kInstant vs kRate, independent group clocks), and Chrome-trace shape.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/ftl/conventional_ssd.h"
#include "src/hostftl/host_ftl.h"
#include "src/telemetry/event_log.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/timeline.h"
#include "src/util/rng.h"
#include "src/zns/zns_device.h"

namespace blockhead {
namespace {

FlashConfig SmallFlash() {
  FlashConfig c;
  c.geometry = FlashGeometry::Small();
  c.timing = FlashTiming::FastForTests();
  return c;
}

ZnsConfig DeviceConfig() {
  ZnsConfig z;
  z.max_active_zones = 6;
  z.max_open_zones = 6;
  return z;
}

// --- Timeline: ordering, eviction, sampling ---

TEST(TimelineTest, DisabledTimelineRecordsNothing) {
  Timeline tl;
  tl.RecordSpan("op", 0, 100);
  tl.RecordMaintenance("track", "erase", 0, 100);
  EXPECT_EQ(tl.slices_recorded(), 0u);
  EXPECT_EQ(tl.num_tracks(), 0u);
  // Sampler registration is allowed while disabled; advancing emits nothing.
  const int g = tl.AddSamplerGroup("layer");
  tl.AddSampler(g, "layer.gauge", Timeline::SampleKind::kInstant, [](SimTime) { return 1.0; });
  tl.AdvanceGroup(g, 10 * kMillisecond);
  EXPECT_EQ(tl.samples_recorded(), 0u);
}

TEST(TimelineTest, EqualTimestampSlicesKeepRecordOrder) {
  Timeline tl;
  tl.Enable();
  tl.RecordMaintenance("m.track", "first", 100, 200);
  tl.RecordMaintenance("m.track", "second", 100, 200);
  tl.RecordSpan("third", 100, 200);
  const std::string json = tl.ExportChromeTrace();
  const std::size_t a = json.find("\"name\":\"first\",\"cat\"");
  const std::size_t b = json.find("\"name\":\"second\",\"cat\"");
  const std::size_t c = json.find("\"name\":\"third\",\"cat\"");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  ASSERT_NE(c, std::string::npos);
  EXPECT_LT(a, b);  // Same timestamp: sequence (append order) breaks the tie.
  EXPECT_LT(b, c);
}

TEST(TimelineTest, SliceRingEvictsOldestAndCounts) {
  Timeline tl;
  TimelineConfig cfg;
  cfg.max_slices = 2;
  tl.Enable(cfg);
  tl.RecordSpan("evicted", 0, 10);
  tl.RecordSpan("kept_a", 20, 30);
  tl.RecordSpan("kept_b", 40, 50);
  EXPECT_EQ(tl.slices_recorded(), 3u);
  EXPECT_EQ(tl.slices_dropped(), 1u);
  const std::string json = tl.ExportChromeTrace();
  // The evicted slice is gone but its track metadata (interned on record) remains.
  EXPECT_EQ(json.find("\"name\":\"evicted\",\"cat\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"kept_a\",\"cat\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"kept_b\",\"cat\""), std::string::npos);
}

TEST(TimelineTest, SampleRingEvictsOldestAndCounts) {
  Timeline tl;
  TimelineConfig cfg;
  cfg.sample_interval = 100;
  cfg.max_samples = 2;
  tl.Enable(cfg);
  const int g = tl.AddSamplerGroup("layer");
  double v = 0.0;
  tl.AddSampler(g, "layer.gauge", Timeline::SampleKind::kInstant, [&v](SimTime) { return v; });
  for (SimTime t = 100; t <= 300; t += 100) {
    v += 1.0;
    tl.AdvanceGroup(g, t);
  }
  EXPECT_EQ(tl.samples_recorded(), 3u);
  EXPECT_EQ(tl.samples_dropped(), 1u);
  const std::string csv = tl.ExportTimeSeriesCsv();
  EXPECT_EQ(csv.find("layer.gauge,100,"), std::string::npos);  // Oldest evicted.
  EXPECT_NE(csv.find("layer.gauge,200,"), std::string::npos);
  EXPECT_NE(csv.find("layer.gauge,300,"), std::string::npos);
}

TEST(TimelineTest, InstantSamplesLandOnGridBoundaries) {
  Timeline tl;
  TimelineConfig cfg;
  cfg.sample_interval = 100;
  tl.Enable(cfg);
  const int g = tl.AddSamplerGroup("layer");
  double v = 7.5;
  tl.AddSampler(g, "layer.gauge", Timeline::SampleKind::kInstant, [&v](SimTime) { return v; });
  tl.AdvanceGroup(g, 42);  // Before the first boundary: nothing.
  EXPECT_EQ(tl.samples_recorded(), 0u);
  tl.AdvanceGroup(g, 137);  // Crosses t=100.
  v = 9.0;
  tl.AdvanceGroup(g, 310);  // Crosses t=300 (one sample at the latest boundary).
  const std::string csv = tl.ExportTimeSeriesCsv();
  EXPECT_EQ(csv,
            "series,t_ns,value\n"
            "layer.gauge,100,7.5\n"
            "layer.gauge,300,9\n");
}

TEST(TimelineTest, RateSamplesEmitWindowedDelta) {
  Timeline tl;
  TimelineConfig cfg;
  cfg.sample_interval = 100;
  tl.Enable(cfg);
  const int g = tl.AddSamplerGroup("dev");
  double busy_ns = 0.0;  // Cumulative, like a plane busy-ns accumulator.
  tl.AddSampler(g, "dev.busy_fraction", Timeline::SampleKind::kRate,
                [&busy_ns](SimTime) { return busy_ns; });
  busy_ns = 50.0;
  tl.AdvanceGroup(g, 100);  // Window [0,100): 50 busy ns -> 0.5.
  busy_ns = 50.0 + 200.0;
  tl.AdvanceGroup(g, 300);  // Window [100,300): 200 busy ns over 200 ns -> 1.
  const std::string csv = tl.ExportTimeSeriesCsv();
  EXPECT_EQ(csv,
            "series,t_ns,value\n"
            "dev.busy_fraction,100,0.5\n"
            "dev.busy_fraction,300,1\n");
}

TEST(BusySeriesTest, SettlesBookedIntervalsAtBoundaries) {
  BusySeries s;
  s.Book(10, 40);
  s.Book(40, 60);   // Back-to-back: merges with the previous interval.
  s.Book(80, 120);  // Idle gap, then more work extending past the first boundary.
  EXPECT_EQ(s.SettledNsAt(100), 70u);   // [10,60) whole + [80,100) partial.
  EXPECT_EQ(s.SettledNsAt(100), 70u);   // Idempotent at the same boundary.
  EXPECT_EQ(s.SettledNsAt(200), 90u);   // The [100,120) overhang lands in the next window.
  EXPECT_EQ(s.SettledNsAt(1000), 90u);  // Nothing further booked.
}

TEST(BusySeriesTest, LateBookedWorkIsClippedAtTheSettledBoundary) {
  // The group clock (driven by sibling resources) can query a boundary while this resource
  // is idle; an op booked afterwards with an earlier start must not retroactively credit
  // the already-reported window. The pre-boundary portion is dropped, keeping every window
  // an exact <=1 utilization.
  BusySeries s;
  EXPECT_EQ(s.SettledNsAt(100), 0u);
  s.Book(40, 160);  // 60ns of this fell before the reported-idle boundary: clipped.
  EXPECT_EQ(s.SettledNsAt(200), 60u);
}

TEST(TimelineTest, BusySeriesRateSamplerNeverExceedsOne) {
  // A burst of ops booked at one instant must not credit their whole service time into the
  // issue window: the busy fraction stays a true utilization, <= 1 in every window.
  Timeline tl;
  TimelineConfig cfg;
  cfg.sample_interval = 100;
  tl.Enable(cfg);
  const int g = tl.AddSamplerGroup("dev");
  BusySeries busy;
  tl.AddSampler(g, "dev.busy_fraction", Timeline::SampleKind::kRate,
                [&busy](SimTime t) { return static_cast<double>(busy.SettledNsAt(t)); });
  // Ten 100ns ops issued at t=10, serialized back-to-back: busy [10, 1010).
  for (int i = 0; i < 10; ++i) {
    busy.Book(10 + 100 * i, 10 + 100 * (i + 1));
  }
  for (SimTime t = 100; t <= 1200; t += 100) {
    tl.AdvanceGroup(g, t);
  }
  const std::string csv = tl.ExportTimeSeriesCsv();
  // Window [0,100) has 90 busy ns, full windows are saturated at 1, and after the run
  // drains the fraction drops back to 0 — never a spike above 1.
  EXPECT_NE(csv.find("dev.busy_fraction,100,0.9\n"), std::string::npos);
  EXPECT_NE(csv.find("dev.busy_fraction,1000,1\n"), std::string::npos);
  EXPECT_NE(csv.find("dev.busy_fraction,1100,0.1\n"), std::string::npos);
  EXPECT_NE(csv.find("dev.busy_fraction,1200,0\n"), std::string::npos);
}

TEST(TimelineTest, SamplerGroupsAdvanceIndependently) {
  // Two layers driven over disjoint phases of model time (the bench pattern: the conv stack
  // runs, then the zns stack) must each produce a full series.
  Timeline tl;
  TimelineConfig cfg;
  cfg.sample_interval = 100;
  tl.Enable(cfg);
  const int a = tl.AddSamplerGroup("a");
  const int b = tl.AddSamplerGroup("b");
  tl.AddSampler(a, "a.gauge", Timeline::SampleKind::kInstant, [](SimTime) { return 1.0; });
  tl.AddSampler(b, "b.gauge", Timeline::SampleKind::kInstant, [](SimTime) { return 2.0; });
  tl.AdvanceGroup(a, 250);    // Layer a active early...
  tl.AdvanceGroup(b, 10000);  // ...layer b much later.
  const std::string csv = tl.ExportTimeSeriesCsv();
  EXPECT_NE(csv.find("a.gauge,200,1"), std::string::npos);
  EXPECT_NE(csv.find("b.gauge,10000,2"), std::string::npos);
}

TEST(TimelineTest, ReattachingSamplerGroupReusesHandleAndResetsSeries) {
  Timeline tl;
  TimelineConfig cfg;
  cfg.sample_interval = 100;
  tl.Enable(cfg);
  const int g1 = tl.AddSamplerGroup("layer");
  tl.AddSampler(g1, "layer.gauge", Timeline::SampleKind::kInstant, [](SimTime) { return 1.0; });
  tl.RemoveSamplerGroup("layer");
  tl.AdvanceGroup(g1, 500);  // Detached: clock advances, no samplers to emit.
  EXPECT_EQ(tl.samples_recorded(), 0u);
  const int g2 = tl.AddSamplerGroup("layer");
  EXPECT_EQ(g1, g2);
  tl.AddSampler(g2, "layer.gauge", Timeline::SampleKind::kInstant, [](SimTime) { return 3.0; });
  tl.AdvanceGroup(g2, 700);
  EXPECT_EQ(tl.samples_recorded(), 1u);
}

TEST(TimelineTest, ChromeTraceShape) {
  Timeline tl;
  TimelineConfig cfg;
  cfg.sample_interval = 100;
  tl.Enable(cfg);
  tl.RecordSpan("kv.get", 1500, 3750);
  tl.RecordMaintenance("flash.plane0", "erase", 2000, 4000);
  const int g = tl.AddSamplerGroup("ftl");
  tl.AddSampler(g, "ftl.write_amplification", Timeline::SampleKind::kInstant,
                [](SimTime) { return 1.25; });
  tl.AdvanceGroup(g, 100);
  const std::string json = tl.ExportChromeTrace();
  // Header and footer.
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ns\"", 0), 0u);
  EXPECT_EQ(json.substr(json.size() - 4), "\n]}\n");
  // All three processes are named.
  EXPECT_NE(json.find("\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"host ops\"}"),
            std::string::npos);
  EXPECT_NE(json.find(
                "\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"device maintenance\"}"),
            std::string::npos);
  EXPECT_NE(
      json.find("\"pid\":2,\"name\":\"process_name\",\"args\":{\"name\":\"utilization\"}"),
      std::string::npos);
  // Slices carry microsecond timestamps with nanosecond precision.
  EXPECT_NE(json.find("\"ts\":1.500,\"dur\":2.250"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":2.000,\"dur\":2.000"), std::string::npos);
  // The sampled series appears as a counter event.
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("ftl.write_amplification"), std::string::npos);
  EXPECT_NE(json.find("{\"value\":1.25}"), std::string::npos);
}

TEST(TimelineTest, EnableClearsPriorData) {
  Timeline tl;
  tl.Enable();
  tl.RecordSpan("old", 0, 10);
  EXPECT_EQ(tl.slices_recorded(), 1u);
  tl.Enable();  // Re-enable: a fresh recording window.
  EXPECT_EQ(tl.slices_recorded(), 0u);
  EXPECT_EQ(tl.ExportChromeTrace().find("\"name\":\"old\",\"cat\""), std::string::npos);
}

// --- EventLog: ring semantics, pages, registry export ---

TEST(EventLogTest, RingEvictsOldestAndTypeTotalsSurvive) {
  EventLog log(/*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    log.Append(static_cast<SimTime>(i * 10), TimelineEventType::kBlockErase, "flash",
               "erase " + std::to_string(i), static_cast<std::uint64_t>(i));
  }
  log.Append(100, TimelineEventType::kGcVictim, "ftl", "victim block 7", 7, 12);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.appended(), 6u);
  EXPECT_EQ(log.dropped(), 3u);
  // Lifetime per-type totals are not affected by eviction.
  EXPECT_EQ(log.appended_of(TimelineEventType::kBlockErase), 5u);
  EXPECT_EQ(log.appended_of(TimelineEventType::kGcVictim), 1u);
  // The retained tail: erases 3, 4 and the victim record.
  const std::vector<TimelineEvent> erases = log.Page(TimelineEventType::kBlockErase);
  ASSERT_EQ(erases.size(), 2u);
  EXPECT_EQ(erases[0].detail, "erase 3");
  EXPECT_EQ(erases[1].detail, "erase 4");
  const std::vector<TimelineEvent> victims = log.Page(TimelineEventType::kGcVictim);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0].arg0, 7u);
  EXPECT_EQ(victims[0].arg1, 12u);
}

TEST(EventLogTest, EqualTimeRecordsKeepAppendOrder) {
  EventLog log;
  log.Append(500, TimelineEventType::kZoneTransition, "zns", "zone 1 EMPTY->IMPLICIT_OPEN", 1);
  log.Append(500, TimelineEventType::kZoneTransition, "zns", "zone 2 EMPTY->IMPLICIT_OPEN", 2);
  const std::vector<TimelineEvent> page = log.Page(TimelineEventType::kZoneTransition);
  ASSERT_EQ(page.size(), 2u);
  EXPECT_LT(page[0].seq, page[1].seq);
  EXPECT_EQ(page[0].arg0, 1u);
  EXPECT_EQ(page[1].arg0, 2u);
}

TEST(EventLogTest, DumpJsonSchemaAndEscaping) {
  EventLog log(2);
  log.Append(10, TimelineEventType::kGcVictim, "conv.ftl", "victim block 7", 7, 42);
  log.Append(20, TimelineEventType::kCompaction, "kv \"a\\b\"", "line\nbreak", 1, 2);
  log.Append(30, TimelineEventType::kZoneReset, "zns", "zone 3 reset", 3);  // Evicts seq 1.
  const std::string dump = log.DumpJson();
  EXPECT_EQ(dump.rfind("{\"schema\":\"blockhead-events-v1\",\"appended\":3,\"dropped\":1}\n",
                       0),
            0u);
  // Evicted records stay evicted; retained ones carry (t_ns, seq, type, args).
  EXPECT_EQ(dump.find("victim block 7"), std::string::npos);
  EXPECT_NE(dump.find("{\"t_ns\":30,\"seq\":3,\"type\":\"zone_reset\",\"source\":\"zns\","
                      "\"detail\":\"zone 3 reset\",\"arg0\":3,\"arg1\":0}"),
            std::string::npos);
  // Caller-supplied source/detail strings are JSON-escaped, never raw.
  EXPECT_NE(dump.find("\"source\":\"kv \\\"a\\\\b\\\"\""), std::string::npos);
  EXPECT_NE(dump.find("\"detail\":\"line\\u000abreak\""), std::string::npos);
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '\n'), 3);  // Header + 2 retained records.
}

TEST(EventLogTest, PublishToExportsCounters) {
  Telemetry tel;  // The bundle wires events.PublishTo(&registry) under "events".
  tel.events.Append(10, TimelineEventType::kZoneReset, "zns", "zone 3 reset", 3);
  tel.events.Append(20, TimelineEventType::kZoneReset, "zns", "zone 4 reset", 4);
  (void)tel.registry.Snapshot();
  EXPECT_EQ(tel.registry.GetCounter("events.total")->value(), 2u);
  EXPECT_EQ(tel.registry.GetCounter("events.dropped")->value(), 0u);
  EXPECT_EQ(tel.registry.GetCounter("events.zone_reset.count")->value(), 2u);
}

// --- Determinism: two same-seed runs serialize byte-identically ---

struct StackArtifacts {
  std::string trace;
  std::string timeseries;
  std::string victim_page;
  std::string transition_page;
};

// Conventional + ZNS/host-FTL stacks sharing one Telemetry bundle (the bench layout), driven
// by a seeded random overwrite workload that forces reclamation on both paths.
StackArtifacts RunMatchedStacks(std::uint64_t seed) {
  Telemetry tel;
  tel.timeline.Enable();

  {
    FtlConfig ftl_cfg;
    ftl_cfg.op_fraction = 0.12;
    ConventionalSsd ssd(SmallFlash(), ftl_cfg);
    ssd.AttachTelemetry(&tel, "conv");
    SimTime t = 0;
    for (std::uint64_t lba = 0; lba < ssd.num_blocks(); ++lba) {
      auto w = ssd.WriteBlocks(Lba{lba}, 1, t);
      if (w.ok()) {
        t = std::max(t, w.value());
      }
    }
    Rng rng(seed);
    for (std::uint64_t i = 0; i < 2 * ssd.num_blocks(); ++i) {
      auto w = ssd.WriteBlocks(Lba{rng.NextBelow(ssd.num_blocks())}, 1, t);
      if (w.ok()) {
        t = std::max(t, w.value());
      }
    }
  }

  {
    ZnsDevice dev(SmallFlash(), DeviceConfig());
    dev.AttachTelemetry(&tel, "zns");
    HostFtlConfig hf_cfg;
    hf_cfg.op_fraction = 0.25;
    HostFtlBlockDevice ftl(&dev, hf_cfg);
    ftl.AttachTelemetry(&tel, "zns.hostftl");
    SimTime t = 0;
    Rng rng(seed + 1);
    for (std::uint64_t i = 0; i < 3 * ftl.num_blocks(); ++i) {
      auto w = ftl.WriteBlocks(Lba{rng.NextBelow(ftl.num_blocks())}, 1, t);
      if (w.ok()) {
        t = std::max(t, w.value());
      }
      ftl.Pump(t, /*reads_pending=*/false);
    }
  }

  StackArtifacts out;
  out.trace = tel.timeline.ExportChromeTrace();
  out.timeseries = tel.timeline.ExportTimeSeriesCsv();
  out.victim_page = tel.events.RenderPage(TimelineEventType::kGcVictim);
  out.transition_page = tel.events.RenderPage(TimelineEventType::kZoneTransition);
  return out;
}

TEST(TimelineDeterminismTest, SameSeedRunsSerializeByteIdentically) {
  const StackArtifacts a = RunMatchedStacks(17);
  const StackArtifacts b = RunMatchedStacks(17);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.timeseries, b.timeseries);
  EXPECT_EQ(a.victim_page, b.victim_page);
  EXPECT_EQ(a.transition_page, b.transition_page);
  // And the run actually produced signal, so the equality above is not vacuous.
  EXPECT_NE(a.trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(a.trace.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_FALSE(a.victim_page.empty());
  EXPECT_FALSE(a.transition_page.empty());
}

TEST(TimelineDeterminismTest, DifferentSeedsDiverge) {
  // Sanity check that the byte-identity above is discriminating.
  const StackArtifacts a = RunMatchedStacks(17);
  const StackArtifacts b = RunMatchedStacks(18);
  EXPECT_NE(a.trace, b.trace);
}

TEST(TimelineIntegrationTest, MaintenanceSlicesAndEventsFlowFromStacks) {
  const StackArtifacts a = RunMatchedStacks(5);
  // Conventional stack: per-plane GC copy slices, FTL gc-cycle slices, erase events.
  EXPECT_NE(a.trace.find("conv.flash.plane0"), std::string::npos);
  EXPECT_NE(a.trace.find("conv.ftl.gc"), std::string::npos);
  // ZNS stack: zone resets land on the reset track and as transitions in the log.
  EXPECT_NE(a.trace.find("zns.reset"), std::string::npos);
  EXPECT_NE(a.transition_page.find("->FULL"), std::string::npos);
  // Utilization series from both stacks.
  EXPECT_NE(a.timeseries.find("conv.flash.plane0.busy_fraction"), std::string::npos);
  EXPECT_NE(a.timeseries.find("zns.hostftl.free_fraction"), std::string::npos);
}

}  // namespace
}  // namespace blockhead
