// Unit tests for src/util: status/result, RNG + zipf, histogram, bitmap, event queue.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "src/util/bitmap.h"
#include "src/util/event_queue.h"
#include "src/util/histogram.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/types.h"

namespace blockhead {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s(ErrorCode::kZoneFull, "zone 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kZoneFull);
  EXPECT_EQ(s.ToString(), "ZONE_FULL: zone 7");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_STRNE(ErrorCodeName(static_cast<ErrorCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 17;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 17);
  EXPECT_EQ(*r, 17);
  EXPECT_EQ(r.code(), ErrorCode::kOk);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ErrorCode::kNotFound;
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(10), 10u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.NextInRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextBoolEdgeCases) {
  Rng rng(5);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
  int trues = 0;
  for (int i = 0; i < 10000; ++i) {
    trues += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(trues / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.NextExponential(50.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 50.0, 2.5);
}

TEST(ZipfTest, ValuesInRange) {
  ZipfGenerator zipf(1000, 0.99, 3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Next(), 1000u);
  }
}

TEST(ZipfTest, SkewConcentratesOnLowRanks) {
  ZipfGenerator zipf(10000, 0.99, 3);
  std::uint64_t in_top_100 = 0;
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) {
    if (zipf.Next() < 100) {
      ++in_top_100;
    }
  }
  // With theta=0.99 the head is heavy: top 1% of keys should absorb the majority of draws.
  EXPECT_GT(static_cast<double>(in_top_100) / draws, 0.5);
}

TEST(ZipfTest, LowThetaIsNearUniform) {
  ZipfGenerator zipf(1000, 0.01, 3);
  std::uint64_t in_top_100 = 0;
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) {
    if (zipf.Next() < 100) {
      ++in_top_100;
    }
  }
  EXPECT_NEAR(static_cast<double>(in_top_100) / draws, 0.1, 0.05);
}

TEST(PermutationTest, IsAPermutation) {
  const auto perm = RandomPermutation(257, 9);
  ASSERT_EQ(perm.size(), 257u);
  std::set<std::uint64_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 257u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 256u);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.min(), 0u);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(100);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 100u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.Mean(), 100.0);
  // Log-bucketed: percentile within ~3.2% relative error.
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), 100.0, 100.0 / 31.0);
}

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (std::uint64_t v = 0; v < 32; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.Percentile(0.0), 0u);
  EXPECT_EQ(h.Percentile(1.0), 31u);
}

TEST(HistogramTest, PercentilesOrdered) {
  Histogram h;
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) {
    h.Record(rng.NextBelow(1000000));
  }
  const auto p50 = h.Percentile(0.50);
  const auto p90 = h.Percentile(0.90);
  const auto p99 = h.Percentile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, h.max());
  // Uniform distribution: p50 near 500k within bucket error.
  EXPECT_NEAR(static_cast<double>(p50), 500000.0, 500000.0 * 0.05);
  EXPECT_NEAR(static_cast<double>(p90), 900000.0, 900000.0 * 0.05);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a;
  Histogram b;
  a.Record(10);
  a.Record(20);
  b.Record(30);
  b.Record(1000000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000000u);
}

TEST(HistogramTest, NamedPercentileAccessors) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 10000; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.P50(), h.Percentile(0.50));
  EXPECT_EQ(h.P90(), h.Percentile(0.90));
  EXPECT_EQ(h.P95(), h.Percentile(0.95));
  EXPECT_EQ(h.P99(), h.Percentile(0.99));
  EXPECT_EQ(h.P999(), h.Percentile(0.999));
  EXPECT_LE(h.P50(), h.P95());
  EXPECT_LE(h.P95(), h.P99());
  EXPECT_LE(h.P99(), h.P999());
  EXPECT_LE(h.P999(), h.max());
  EXPECT_EQ(h.sum(), 10000u * 10001u / 2);
}

TEST(HistogramTest, MergePreservesPercentilesAndSum) {
  // Merging two histograms must equal recording the union into one.
  Histogram a;
  Histogram b;
  Histogram combined;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.NextBelow(1000000);
    ((i % 2 == 0) ? a : b).Record(v);
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_EQ(a.P50(), combined.P50());
  EXPECT_EQ(a.P95(), combined.P95());
  EXPECT_EQ(a.P99(), combined.P99());
  EXPECT_EQ(a.P999(), combined.P999());
}

TEST(HistogramTest, RecordManyAndReset) {
  Histogram h;
  h.RecordMany(50, 1000);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.Mean(), 50.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, SummaryIsNonEmpty) {
  Histogram h;
  h.Record(1234);
  const std::string s = h.Summary(1000.0, "us");
  EXPECT_NE(s.find("n=1"), std::string::npos);
  EXPECT_NE(s.find("us"), std::string::npos);
}

TEST(RollingHistogramTest, EmptyWindowMergesToEmptyHistogram) {
  RollingHistogram rh(1000, 4);
  const Histogram empty = rh.Merged(5000);
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.Percentile(0.99), 0u);
  // Records that have aged fully out of the window also merge to empty.
  rh.Record(100, 42);
  EXPECT_EQ(rh.Merged(100).count(), 1u);
  EXPECT_EQ(rh.Merged(100 + rh.window_ns() * 2).count(), 0u);
}

TEST(RollingHistogramTest, SingleSampleWindowReportsThatSample) {
  RollingHistogram rh(1000, 4);
  rh.Record(500, 77);
  const Histogram h = rh.Merged(500);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.Percentile(0.5), 77u);
  EXPECT_EQ(h.Percentile(0.999), 77u);
}

TEST(RollingHistogramTest, RolloverMidMergeDropsOnlyExpiredBuckets) {
  // 4 buckets of 250ns. Fill all four epochs, then advance far enough that the oldest
  // bucket has rolled over: a merge taken mid-rollover must contain exactly the samples
  // still inside the window, and a stale bucket being *reused* must shed its old content.
  RollingHistogram rh(1000, 4);
  rh.Record(100, 1);   // epoch 0
  rh.Record(300, 2);   // epoch 1
  rh.Record(600, 3);   // epoch 2
  rh.Record(900, 4);   // epoch 3
  EXPECT_EQ(rh.Merged(900).count(), 4u);
  // now = 1100 (epoch 4): the window [100, 1100] no longer covers epoch 0.
  EXPECT_EQ(rh.Merged(1100).count(), 3u);
  EXPECT_EQ(rh.Merged(1100).Percentile(0.01), 2u);
  // Writing into epoch 4 reuses epoch 0's slot; the old sample must not resurface.
  rh.Record(1100, 5);
  const Histogram mid = rh.Merged(1100);
  EXPECT_EQ(mid.count(), 4u);
  EXPECT_EQ(mid.Percentile(0.01), 2u);
  EXPECT_EQ(mid.Percentile(0.999), 5u);
  // Merging at a later now while the same buckets stand: expiry is by epoch, not by call
  // order, so percentiles stay consistent with the surviving population.
  EXPECT_EQ(rh.Merged(1500).count(), 2u);   // epochs 1 and 2 (t=300, t=600) aged out too.
  EXPECT_EQ(rh.Merged(1500).Percentile(0.01), 4u);
}

TEST(RollingHistogramTest, LongIdleGapExpiresEveryBucketLazily) {
  // A gap much longer than the window — and in particular a gap that is an exact multiple
  // of the window — lands new epochs on the SAME slot indices the stale epochs used
  // (epoch % num_buckets collides). Lazy expiry must go by epoch number, never slot
  // occupancy, or the pre-gap samples would resurface in the post-gap merge.
  RollingHistogram rh(1000, 4);
  rh.Record(100, 1);
  rh.Record(300, 2);
  rh.Record(600, 3);
  rh.Record(900, 4);
  const std::uint64_t gap = rh.window_ns() * 1000;  // Epochs collide modulo num_buckets.
  EXPECT_EQ(rh.Merged(900 + gap).count(), 0u);
  rh.Record(100 + gap, 50);  // Same slot as the t=100 sample's epoch.
  const Histogram after = rh.Merged(100 + gap);
  EXPECT_EQ(after.count(), 1u);
  EXPECT_EQ(after.Percentile(0.5), 50u);
  EXPECT_EQ(after.min(), 50u) << "pre-gap sample resurfaced after idle gap";
}

TEST(RollingCounterTest, SumTracksWindowAndRollover) {
  RollingCounter rc(1000, 4);
  EXPECT_EQ(rc.Sum(0), 0u);  // Empty window.
  rc.Add(100, 10);
  rc.Add(900, 1);
  EXPECT_EQ(rc.Sum(900), 11u);
  EXPECT_EQ(rc.Sum(1100), 1u);  // The epoch-0 tally aged out.
  rc.Add(1100, 5);              // Reuses epoch 0's slot without resurrecting its value.
  EXPECT_EQ(rc.Sum(1100), 6u);
  EXPECT_EQ(rc.Sum(1100 + rc.window_ns() * 2), 0u);
}

TEST(RollingCounterTest, LongIdleGapExpiresEveryBucketLazily) {
  RollingCounter rc(1000, 4);
  rc.Add(100, 10);
  rc.Add(900, 7);
  const std::uint64_t gap = rc.window_ns() * 4096;  // Exact multiple: slots collide.
  EXPECT_EQ(rc.Sum(900 + gap), 0u);
  rc.Add(100 + gap, 3);  // Reuses the t=100 tally's slot after the idle gap.
  EXPECT_EQ(rc.Sum(100 + gap), 3u) << "pre-gap tally resurfaced after idle gap";
}

TEST(BitmapTest, SetTestClear) {
  Bitmap bm(130);
  EXPECT_EQ(bm.size(), 130u);
  EXPECT_EQ(bm.set_count(), 0u);
  EXPECT_TRUE(bm.Set(0));
  EXPECT_TRUE(bm.Set(129));
  EXPECT_FALSE(bm.Set(129));  // Already set.
  EXPECT_EQ(bm.set_count(), 2u);
  EXPECT_TRUE(bm.Test(0));
  EXPECT_TRUE(bm.Test(129));
  EXPECT_FALSE(bm.Test(64));
  EXPECT_TRUE(bm.Clear(0));
  EXPECT_FALSE(bm.Clear(0));
  EXPECT_EQ(bm.set_count(), 1u);
}

TEST(BitmapTest, FindFirstSetAndClear) {
  Bitmap bm(200);
  EXPECT_EQ(bm.FindFirstSet(), 200u);
  EXPECT_EQ(bm.FindFirstClear(), 0u);
  bm.Set(70);
  bm.Set(150);
  EXPECT_EQ(bm.FindFirstSet(), 70u);
  EXPECT_EQ(bm.FindFirstSet(71), 150u);
  EXPECT_EQ(bm.FindFirstSet(151), 200u);
  for (std::size_t i = 0; i < 65; ++i) {
    bm.Set(i);
  }
  EXPECT_EQ(bm.FindFirstClear(), 65u);
}

TEST(BitmapTest, ClearAll) {
  Bitmap bm(64);
  for (std::size_t i = 0; i < 64; ++i) {
    bm.Set(i);
  }
  EXPECT_EQ(bm.set_count(), 64u);
  bm.ClearAll();
  EXPECT_EQ(bm.set_count(), 0u);
  EXPECT_EQ(bm.FindFirstSet(), 64u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue<int> q;
  q.Push(30, 3);
  q.Push(10, 1);
  q.Push(20, 2);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.PeekTime(), 10u);
  EXPECT_EQ(q.Pop().payload, 1);
  EXPECT_EQ(q.Pop().payload, 2);
  EXPECT_EQ(q.Pop().payload, 3);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue<int> q;
  for (int i = 0; i < 10; ++i) {
    q.Push(5, i);
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(q.Pop().payload, i);
  }
}

TEST(EventQueueTest, EqualTimeFifoSurvivesInterleavedPops) {
  // FIFO order among equal-time events must hold even when pops interleave with pushes (the
  // pattern of an actor re-scheduling itself at the current time).
  EventQueue<int> q;
  q.Push(5, 0);
  q.Push(5, 1);
  EXPECT_EQ(q.Pop().payload, 0);
  q.Push(5, 2);  // Same time, pushed after a pop.
  q.Push(3, 99);
  EXPECT_EQ(q.Pop().payload, 99);  // Earlier time still wins.
  EXPECT_EQ(q.Pop().payload, 1);
  EXPECT_EQ(q.Pop().payload, 2);
  EXPECT_TRUE(q.empty());
}

TEST(TypesTest, ThroughputConversion) {
  EXPECT_DOUBLE_EQ(ToMiBPerSec(kMiB, kSecond), 1.0);
  EXPECT_DOUBLE_EQ(ToMiBPerSec(0, kSecond), 0.0);
  EXPECT_DOUBLE_EQ(ToMiBPerSec(kMiB, 0), 0.0);
  EXPECT_DOUBLE_EQ(ToMiBPerSec(512 * kMiB, kSecond / 2), 1024.0);
}

}  // namespace
}  // namespace blockhead
