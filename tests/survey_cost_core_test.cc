// Tests for the survey dataset (Table 1), the cost/DRAM model (§2.2), and the core façade.

#include <gtest/gtest.h>

#include "src/core/matched_pair.h"
#include "src/cost/cost_model.h"
#include "src/survey/survey.h"

namespace blockhead {
namespace {

// --- Survey / Table 1 ---

TEST(SurveyTest, AggregationMatchesPaperTable1Exactly) {
  const SurveyTable table = ComputeTable1();
  // FAST row.
  EXPECT_EQ(table.counts[0][0], 9u);
  EXPECT_EQ(table.counts[0][1], 8u);
  EXPECT_EQ(table.counts[0][2], 23u);
  EXPECT_EQ(table.counts[0][3], 8u);
  // OSDI row.
  EXPECT_EQ(table.counts[1][0], 3u);
  EXPECT_EQ(table.counts[1][1], 0u);
  EXPECT_EQ(table.counts[1][2], 4u);
  EXPECT_EQ(table.counts[1][3], 0u);
  // SOSP row.
  EXPECT_EQ(table.counts[2][0], 2u);
  EXPECT_EQ(table.counts[2][1], 2u);
  EXPECT_EQ(table.counts[2][2], 2u);
  EXPECT_EQ(table.counts[2][3], 0u);
  // MSST row.
  EXPECT_EQ(table.counts[3][0], 10u);
  EXPECT_EQ(table.counts[3][1], 7u);
  EXPECT_EQ(table.counts[3][2], 16u);
  EXPECT_EQ(table.counts[3][3], 10u);
  // Totals row.
  EXPECT_EQ(table.CategoryTotal(SurveyCategory::kSimplified), 24u);
  EXPECT_EQ(table.CategoryTotal(SurveyCategory::kApproach), 17u);
  EXPECT_EQ(table.CategoryTotal(SurveyCategory::kResults), 45u);
  EXPECT_EQ(table.CategoryTotal(SurveyCategory::kOrthogonal), 18u);
  EXPECT_EQ(table.TotalClassified(), 104u);
  EXPECT_EQ(table.TotalPublications(), 465u);
}

TEST(SurveyTest, HeadlinePercentagesMatchAbstract) {
  const SurveyTable table = ComputeTable1();
  // "23% of papers address problems that are simplified or solved by ZNS."
  EXPECT_NEAR(table.CategoryFraction(SurveyCategory::kSimplified), 0.23, 0.01);
  // "only 18% of papers will not be affected."
  EXPECT_NEAR(table.CategoryFraction(SurveyCategory::kOrthogonal), 0.18, 0.01);
  // "The remaining 59% ... affected or need revisiting."
  EXPECT_NEAR(table.CategoryFraction(SurveyCategory::kApproach) +
                  table.CategoryFraction(SurveyCategory::kResults),
              0.59, 0.01);
}

TEST(SurveyTest, DatasetHasNamedAndReconstructedEntries) {
  const auto& dataset = SurveyDataset();
  EXPECT_EQ(dataset.size(), 104u);
  int named = 0;
  for (const SurveyPaper& paper : dataset) {
    if (!paper.reconstructed) {
      ++named;
    }
  }
  EXPECT_GE(named, 10) << "the paper's worked examples should appear as real entries";
  EXPECT_LT(named, 104);
}

TEST(SurveyTest, RenderedTableContainsRows) {
  const std::string rendered = RenderTable1(ComputeTable1());
  EXPECT_NE(rendered.find("FAST"), std::string::npos);
  EXPECT_NE(rendered.find("465"), std::string::npos);
  EXPECT_NE(rendered.find("104"), std::string::npos) << rendered;
}

// --- Cost model ---

TEST(CostModelTest, DramPerTbMatchesPaperFigures) {
  const CostModelConfig cfg;
  // "around 1 GB of on-board DRAM per TB of flash."
  const DramEstimate conv = ConventionalMappingDram(1 * kTiB, cfg);
  EXPECT_NEAR(conv.bytes_per_tib / static_cast<double>(kGiB), 1.0, 0.1);
  // "~256 KB of on-board DRAM" per TB for ZNS with 16 MiB blocks.
  const DramEstimate zns = ZnsMappingDram(1 * kTiB, cfg);
  EXPECT_NEAR(zns.bytes_per_tib / static_cast<double>(kKiB), 256.0, 8.0);
  // The ratio is ~4096x (block/page size ratio).
  EXPECT_NEAR(static_cast<double>(conv.bytes) / static_cast<double>(zns.bytes), 4096.0, 64.0);
}

TEST(CostModelTest, ZnsCheaperPerUsableGib) {
  const CostModelConfig cfg;
  for (const double op : {0.07, 0.125, 0.28}) {
    const DeviceCost conv = ConventionalDeviceCost(4 * kTiB, op, cfg);
    const DeviceCost zns = ZnsDeviceCost(4 * kTiB, cfg);
    EXPECT_LT(zns.usd_per_usable_gib(), conv.usd_per_usable_gib()) << "op=" << op;
    EXPECT_LT(zns.raw_flash_bytes, conv.raw_flash_bytes);
    EXPECT_LT(zns.dram_usd, conv.dram_usd);
  }
}

TEST(CostModelTest, SavingsGrowWithOverprovisioning) {
  const CostModelConfig cfg;
  const DeviceCost zns = ZnsDeviceCost(4 * kTiB, cfg);
  const double save_low =
      1.0 - zns.usd_per_usable_gib() /
                ConventionalDeviceCost(4 * kTiB, 0.07, cfg).usd_per_usable_gib();
  const double save_high =
      1.0 - zns.usd_per_usable_gib() /
                ConventionalDeviceCost(4 * kTiB, 0.28, cfg).usd_per_usable_gib();
  EXPECT_GT(save_high, save_low);
  EXPECT_GT(save_low, 0.0);
}

TEST(CostModelTest, HostDramCheaperThanDeviceDram) {
  const CostModelConfig cfg;
  const DeviceCost conv = ConventionalDeviceCost(4 * kTiB, 0.07, cfg);
  // Rebuilding page-granular state in host DRAM costs less than the embedded DRAM it
  // replaces (fn. 2: small embedded DIMMs are >2x $/GB).
  EXPECT_LT(ZnsHostDramUsd(4 * kTiB, cfg), conv.dram_usd);
}


TEST(CostModelTest, LifetimeScalesInverselyWithWa) {
  // 4 TiB TLC drive (3000 cycles), 4 TB/day host writes.
  const LifetimeEstimate wa1 = EstimateLifetime(4 * kTiB, 3000, 1.0, 4000.0);
  const LifetimeEstimate wa4 = EstimateLifetime(4 * kTiB, 3000, 4.0, 4000.0);
  EXPECT_NEAR(wa1.years / wa4.years, 4.0, 0.01);
  EXPECT_NEAR(wa1.dwpd_supported / wa4.dwpd_supported, 4.0, 0.01);
  EXPECT_GT(wa1.years, 8.0);  // 3000 cycles at ~1 DWPD-ish load lasts years.
}

TEST(CostModelTest, LifetimeSanityAtKnownPoint) {
  // 1 TiB drive, 1000 cycles, WA 1, writing exactly 1 drive per day: ~1000/365 years.
  const LifetimeEstimate e =
      EstimateLifetime(1 * kTiB, 1000, 1.0, static_cast<double>(1 * kTiB) / 1e9);
  EXPECT_NEAR(e.years, 1000.0 / 365.0, 0.05);
  // And it supports ~0.55 DWPD over a 5-year life (1000 / (365*5)).
  EXPECT_NEAR(e.dwpd_supported, 1000.0 / (365.0 * 5.0), 0.01);
}

// --- Core façade ---

TEST(MatchedPairTest, DevicesShareGeometry) {
  const MatchedConfig cfg = MatchedConfig::Small();
  MatchedPair pair = MakeMatchedPair(cfg);
  ASSERT_NE(pair.conventional, nullptr);
  ASSERT_NE(pair.zns, nullptr);
  EXPECT_EQ(pair.conventional->flash().geometry().capacity_bytes(),
            pair.zns->flash().geometry().capacity_bytes());
  EXPECT_EQ(pair.conventional->block_size(), pair.zns->page_size());
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22222"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Every line has the same position for column 2's start? At minimum, renders 4 lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::FmtBytes(512), "512 B");
  EXPECT_EQ(TablePrinter::FmtBytes(2 * kKiB), "2.00 KiB");
  EXPECT_EQ(TablePrinter::FmtBytes(3 * kMiB), "3.00 MiB");
  EXPECT_EQ(TablePrinter::FmtBytes(5 * kGiB), "5.00 GiB");
}

}  // namespace
}  // namespace blockhead
