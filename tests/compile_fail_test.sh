#!/usr/bin/env bash
# Compile-fail harness for the strong ID/unit types (registered as the
# strong_id_compile_fail ctest). Proves the type system REJECTS address mixups: each
# EXPECT_FAIL_n case in tests/strong_id_compile_fail.cc must fail to compile, and the file
# with no case defined must compile cleanly (otherwise a broken baseline would make every
# "expected failure" pass vacuously).
#
# A second, clang-only section does the same for the shard-safety capability annotations
# (src/core/shard_safety.h): each TS_EXPECT_FAIL_n case in
# tests/shard_safety_compile_fail.cc must be rejected under -Werror=thread-safety. GCC has
# no thread-safety analysis, so that section announces a loud SKIPPED line elsewhere.
#
#   usage: compile_fail_test.sh <source-root> [compiler]

set -u
root="${1:?usage: compile_fail_test.sh <source-root> [compiler]}"
cxx="${2:-${CXX:-c++}}"
src="$root/tests/strong_id_compile_fail.cc"
ncases=9

# -Werror=narrowing mirrors the BLOCKHEAD_WERROR CI build: GCC demotes narrowing inside
# braced constructor calls to a warning by default, but the strict build makes it fatal.
compile() {
  "$cxx" -std=c++20 -Werror=narrowing -fsyntax-only -I "$root" "$@" "$src" 2>/dev/null
}

if ! compile; then
  echo "FAIL: baseline (no EXPECT_FAIL_n defined) does not compile" >&2
  "$cxx" -std=c++20 -fsyntax-only -I "$root" "$src" >&2 || true
  exit 1
fi
echo "ok: baseline compiles"

failures=0
for i in $(seq 1 "$ncases"); do
  if compile "-DEXPECT_FAIL_$i"; then
    echo "FAIL: case $i (EXPECT_FAIL_$i) compiled but must be rejected" >&2
    failures=$((failures + 1))
  else
    echo "ok: case $i rejected by the compiler"
  fi
done

if [[ "$failures" -gt 0 ]]; then
  echo "compile_fail_test: $failures of $ncases mixups were NOT rejected" >&2
  exit 1
fi
echo "compile_fail_test: all $ncases address mixups rejected"

# --- shard-safety capability annotations (clang-only: GCC has no -Wthread-safety) ---
ts_src="$root/tests/shard_safety_compile_fail.cc"
ts_ncases=3

if ! "$cxx" --version 2>/dev/null | grep -qi clang; then
  echo "SKIPPED: compiler is not clang — thread-safety analysis cases need clang" \
       "(annotations are no-ops under GCC)"
  exit 0
fi

ts_compile() {
  "$cxx" -std=c++20 -Wthread-safety -Werror=thread-safety -fsyntax-only -I "$root" \
    "$@" "$ts_src" 2>/dev/null
}

if ! ts_compile; then
  echo "FAIL: thread-safety baseline (no TS_EXPECT_FAIL_n defined) does not compile" >&2
  "$cxx" -std=c++20 -Wthread-safety -Werror=thread-safety -fsyntax-only -I "$root" \
    "$ts_src" >&2 || true
  exit 1
fi
echo "ok: thread-safety baseline compiles clean under -Werror=thread-safety"

ts_failures=0
for i in $(seq 1 "$ts_ncases"); do
  if ts_compile "-DTS_EXPECT_FAIL_$i"; then
    echo "FAIL: case $i (TS_EXPECT_FAIL_$i) compiled but must be rejected" >&2
    ts_failures=$((ts_failures + 1))
  else
    echo "ok: thread-safety case $i rejected by the compiler"
  fi
done

if [[ "$ts_failures" -gt 0 ]]; then
  echo "compile_fail_test: $ts_failures of $ts_ncases annotation violations were NOT" \
       "rejected" >&2
  exit 1
fi
echo "compile_fail_test: all $ts_ncases annotation violations rejected"
