#!/usr/bin/env bash
# Compile-fail harness for the strong ID/unit types (registered as the
# strong_id_compile_fail ctest). Proves the type system REJECTS address mixups: each
# EXPECT_FAIL_n case in tests/strong_id_compile_fail.cc must fail to compile, and the file
# with no case defined must compile cleanly (otherwise a broken baseline would make every
# "expected failure" pass vacuously).
#
#   usage: compile_fail_test.sh <source-root> [compiler]

set -u
root="${1:?usage: compile_fail_test.sh <source-root> [compiler]}"
cxx="${2:-${CXX:-c++}}"
src="$root/tests/strong_id_compile_fail.cc"
ncases=9

# -Werror=narrowing mirrors the BLOCKHEAD_WERROR CI build: GCC demotes narrowing inside
# braced constructor calls to a warning by default, but the strict build makes it fatal.
compile() {
  "$cxx" -std=c++20 -Werror=narrowing -fsyntax-only -I "$root" "$@" "$src" 2>/dev/null
}

if ! compile; then
  echo "FAIL: baseline (no EXPECT_FAIL_n defined) does not compile" >&2
  "$cxx" -std=c++20 -fsyntax-only -I "$root" "$src" >&2 || true
  exit 1
fi
echo "ok: baseline compiles"

failures=0
for i in $(seq 1 "$ncases"); do
  if compile "-DEXPECT_FAIL_$i"; then
    echo "FAIL: case $i (EXPECT_FAIL_$i) compiled but must be rejected" >&2
    failures=$((failures + 1))
  else
    echo "ok: case $i rejected by the compiler"
  fi
done

if [[ "$failures" -gt 0 ]]; then
  echo "compile_fail_test: $failures of $ncases mixups were NOT rejected" >&2
  exit 1
fi
echo "compile_fail_test: all $ncases address mixups rejected"
