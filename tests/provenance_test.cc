// Write-provenance ledger tests: conservation (per-cause sums equal the flash device's own
// totals in every stack configuration), the factorized-WA telescoping identity, ledger dump
// determinism, and the bench-teardown span finalization fix.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/cache/flash_cache.h"
#include "src/core/matched_pair.h"
#include "src/hostftl/host_ftl.h"
#include "src/kv/env.h"
#include "src/kv/kv_store.h"
#include "src/telemetry/telemetry.h"
#include "src/util/rng.h"
#include "src/zonefile/zone_file_system.h"

namespace blockhead {
namespace {

// The invariant everything rests on: the ledger's totals equal the flash device's own
// counters, and the per-cause matrix sums back to those totals (no write is double-counted or
// dropped, whatever scopes were open).
void ExpectConservation(const WriteProvenance& provenance, const std::string& device,
                        const FlashStats& flash) {
  const WriteProvenance::DeviceLedger* ledger = provenance.FindDevice(device);
  ASSERT_NE(ledger, nullptr) << device;
  EXPECT_EQ(ledger->total_pages, flash.total_pages_programmed());
  EXPECT_EQ(ledger->host_pages, flash.host_pages_programmed);
  EXPECT_EQ(ledger->total_erases, flash.blocks_erased);
  std::uint64_t programs = 0;
  std::uint64_t erases = 0;
  for (int c = 0; c < kWriteCauseCount; ++c) {
    programs += WriteProvenance::ProgramCount(*ledger, static_cast<WriteCause>(c));
    erases += WriteProvenance::EraseCount(*ledger, static_cast<WriteCause>(c));
  }
  EXPECT_EQ(programs, ledger->total_pages);
  EXPECT_EQ(erases, ledger->total_erases);
}

void ExpectFactorizationIdentity(const WriteProvenance& provenance,
                                 const std::vector<std::string>& domains,
                                 const std::string& device) {
  const WriteProvenance::FactorizedWa wa = provenance.Factorize(domains, device);
  ASSERT_EQ(wa.factors.size(), domains.size() + 1);
  for (const auto& f : wa.factors) {
    EXPECT_GT(f.factor, 0.0) << f.from << "->" << f.to;
  }
  EXPECT_NEAR(wa.product, wa.end_to_end, 1e-9);
}

TEST(ProvenanceTest, ScopeStackNestsAndToleratesNull) {
  WriteProvenance p;
  EXPECT_EQ(p.current_cause(), WriteCause::kHostWrite);
  EXPECT_EQ(p.current_layer(), StackLayer::kHost);
  {
    WriteProvenance::CauseScope outer(&p, WriteCause::kLsmCompaction, StackLayer::kKv);
    EXPECT_EQ(p.current_cause(), WriteCause::kLsmCompaction);
    {
      WriteProvenance::CauseScope inner(&p, WriteCause::kZoneCompaction, StackLayer::kZoneFs);
      EXPECT_EQ(p.current_cause(), WriteCause::kZoneCompaction);
      EXPECT_EQ(p.current_layer(), StackLayer::kZoneFs);
      WriteProvenance::CauseScope noop(nullptr, WriteCause::kPadding, StackLayer::kFlash);
      EXPECT_EQ(p.open_scopes(), 2u);
    }
    EXPECT_EQ(p.current_cause(), WriteCause::kLsmCompaction);
  }
  EXPECT_EQ(p.current_cause(), WriteCause::kHostWrite);

  // Direct recording lands in the innermost scope's cell.
  WriteProvenance::DeviceLedger* ledger = p.RegisterDevice("dev", 8, 100, Bytes{4096});
  {
    WriteProvenance::CauseScope gc(&p, WriteCause::kDeviceGC, StackLayer::kFtl);
    p.RecordProgram(ledger, /*host_op=*/false, 10);
    p.RecordErase(ledger, 20);
  }
  p.RecordProgram(ledger, /*host_op=*/true, 30);
  EXPECT_EQ(WriteProvenance::ProgramCount(*ledger, WriteCause::kDeviceGC), 1u);
  EXPECT_EQ(WriteProvenance::ProgramCount(*ledger, WriteCause::kHostWrite), 1u);
  EXPECT_EQ(WriteProvenance::EraseCount(*ledger, WriteCause::kDeviceGC), 1u);
  EXPECT_EQ(ledger->total_pages, 2u);
  EXPECT_EQ(ledger->host_pages, 1u);
  EXPECT_EQ(ledger->last_time, 30);
}

TEST(ProvenanceTest, ConventionalGcAndWearMigrationAttribution) {
  MatchedConfig cfg = MatchedConfig::Small();
  cfg.flash.store_data = false;
  cfg.ftl.op_fraction = 0.10;
  cfg.ftl.wear_migrate_interval = 8;
  Telemetry tel;
  ConventionalSsd ssd(cfg.flash, cfg.ftl);
  ssd.AttachTelemetry(&tel, "conv");

  Rng rng(7);
  SimTime t = 0;
  const std::uint64_t logical = ssd.num_blocks();
  for (std::uint64_t i = 0; i < logical * 3; ++i) {
    auto w = ssd.WriteBlocks(Lba{rng.NextBelow(logical)}, 1, t);
    ASSERT_TRUE(w.ok()) << w.status().ToString();
    t = std::max(t, w.value());
  }

  ExpectConservation(tel.provenance, "conv.flash", ssd.flash().stats());
  const auto* ledger = tel.provenance.FindDevice("conv.flash");
  ASSERT_NE(ledger, nullptr);
  EXPECT_GT(WriteProvenance::ProgramCount(*ledger, WriteCause::kDeviceGC), 0u);
  EXPECT_GT(WriteProvenance::EraseCount(*ledger, WriteCause::kDeviceGC), 0u);
  if (ssd.ftl_stats().wear_migrations > 0) {
    EXPECT_GT(WriteProvenance::EraseCount(*ledger, WriteCause::kWearMigration), 0u);
  }
  ExpectFactorizationIdentity(tel.provenance, {}, "conv.flash");

  // The endurance projection sees the churn and reports a finite horizon.
  const auto projection = tel.provenance.ProjectEndurance("conv.flash");
  ASSERT_TRUE(projection.valid);
  EXPECT_GT(projection.erases_per_block_per_day, 0.0);
  EXPECT_GT(projection.projected_days, 0.0);

  // Satellite: the wear summary is exported as a full bucketed histogram.
  bool found_wear_histogram = false;
  for (const auto& entry : tel.registry.Snapshot()) {
    if (entry.name == "conv.flash.wear.erase_count") {
      found_wear_histogram = true;
      ASSERT_EQ(entry.kind, MetricKind::kHistogram);
      EXPECT_EQ(entry.histogram->count(), cfg.flash.geometry.total_blocks());
      EXPECT_GT(entry.histogram->max(), 0u);
    }
  }
  EXPECT_TRUE(found_wear_histogram);
}

TEST(ProvenanceTest, ZonefileCompactionAndPaddingAttribution) {
  MatchedConfig cfg = MatchedConfig::Small();
  Telemetry tel;
  ZnsDevice device(cfg.flash, cfg.zns);
  device.AttachTelemetry(&tel, "zns");
  auto fs = ZoneFileSystem::Format(&device, ZoneFileConfig{}, 0);
  ASSERT_TRUE(fs.ok());
  fs.value()->AttachTelemetry(&tel, "zfs");

  SimTime t = 0;
  std::vector<std::uint8_t> blob(40 * 4096 + 904, 0xab);  // Partial tail: padded on Sync.
  std::vector<std::string> live;
  Rng rng(5);
  for (int i = 0; i < 120; ++i) {
    const std::string name = "f" + std::to_string(i);
    ASSERT_TRUE(fs.value()->Create(name, Lifetime::kShort, t).ok());
    auto a = fs.value()->Append(name, blob, t);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    t = std::max(t, a.value());
    ASSERT_TRUE(fs.value()->Sync(name, t).ok());
    live.push_back(name);
    if (live.size() > 12) {
      const std::size_t idx = static_cast<std::size_t>(rng.NextBelow(live.size()));
      ASSERT_TRUE(fs.value()->Delete(live[idx], t).ok());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    fs.value()->Pump(t, false, 4);
  }

  ExpectConservation(tel.provenance, "zns.flash", device.flash().stats());
  const auto* ledger = tel.provenance.FindDevice("zns.flash");
  ASSERT_NE(ledger, nullptr);
  EXPECT_GT(WriteProvenance::ProgramCount(*ledger, WriteCause::kPadding), 0u);
  if (fs.value()->stats().gc_pages_copied > 0) {
    EXPECT_GT(WriteProvenance::ProgramCount(*ledger, WriteCause::kZoneCompaction), 0u);
  }
  ExpectFactorizationIdentity(tel.provenance, {"zfs"}, "zns.flash");
}

TEST(ProvenanceTest, HostFtlReclaimAttribution) {
  MatchedConfig cfg = MatchedConfig::Small();
  cfg.flash.store_data = false;
  Telemetry tel;
  ZnsDevice device(cfg.flash, cfg.zns);
  device.AttachTelemetry(&tel, "zns");
  HostFtlBlockDevice block(&device, HostFtlConfig{});
  block.AttachTelemetry(&tel, "emul");

  Rng rng(23);
  SimTime t = 0;
  const std::uint64_t logical = block.num_blocks();
  for (std::uint64_t i = 0; i < logical * 3; ++i) {
    auto w = block.WriteBlocks(Lba{rng.NextBelow(logical)}, 1, t);
    ASSERT_TRUE(w.ok()) << w.status().ToString();
    t = std::max(t, w.value());
    block.Pump(t, false, 1);
  }

  ExpectConservation(tel.provenance, "zns.flash", device.flash().stats());
  const auto* ledger = tel.provenance.FindDevice("zns.flash");
  ASSERT_NE(ledger, nullptr);
  EXPECT_GT(WriteProvenance::ProgramCount(*ledger, WriteCause::kBlockEmulationReclaim), 0u);
  EXPECT_GT(WriteProvenance::EraseCount(*ledger, WriteCause::kBlockEmulationReclaim), 0u);
  ExpectFactorizationIdentity(tel.provenance, {"emul"}, "zns.flash");

  // The chain's domain counter matches the layer's own accounting exactly.
  EXPECT_EQ(tel.provenance.DomainBytes("emul").value(),
            block.stats().host_pages_written * device.page_size());
}

TEST(ProvenanceTest, KvFlushAndCompactionAttribution) {
  MatchedConfig cfg = MatchedConfig::Small();
  cfg.zns.max_active_zones = 10;
  cfg.zns.max_open_zones = 10;
  Telemetry tel;
  ZnsDevice device(cfg.flash, cfg.zns);
  device.AttachTelemetry(&tel, "zns");
  auto fs = ZoneFileSystem::Format(&device, ZoneFileConfig{}, 0);
  ASSERT_TRUE(fs.ok());
  fs.value()->AttachTelemetry(&tel, "zfs");
  ZoneEnv env(fs.value().get());
  KvConfig kv_cfg;
  kv_cfg.memtable_bytes = 16 * kKiB;
  kv_cfg.level_base_bytes = 64 * kKiB;
  kv_cfg.max_levels = 4;
  auto store = KvStore::Open(&env, kv_cfg, 0);
  ASSERT_TRUE(store.ok());
  store.value()->AttachTelemetry(&tel, "kv");

  Rng rng(1);
  SimTime t = 0;
  std::string value(100, 'q');
  for (std::uint64_t i = 0; i < 2500; ++i) {
    auto p = store.value()->Put("k" + std::to_string(rng.NextBelow(500)), value, t);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    t = std::max(t, p.value());
  }
  ASSERT_TRUE(store.value()->Flush(t).ok());

  ExpectConservation(tel.provenance, "zns.flash", device.flash().stats());
  const auto* ledger = tel.provenance.FindDevice("zns.flash");
  ASSERT_NE(ledger, nullptr);
  EXPECT_GT(WriteProvenance::ProgramCount(*ledger, WriteCause::kLsmFlush), 0u);
  EXPECT_GT(WriteProvenance::ProgramCount(*ledger, WriteCause::kLsmCompaction), 0u);
  ExpectFactorizationIdentity(tel.provenance, {"kv", "zfs"}, "zns.flash");
}

TEST(ProvenanceTest, CacheRecyclingAttribution) {
  MatchedConfig cfg = MatchedConfig::Small();
  cfg.flash.store_data = false;
  Telemetry tel;
  ConventionalSsd ssd(cfg.flash, cfg.ftl);
  ssd.AttachTelemetry(&tel, "conv");
  BlockCacheConfig cache_cfg;
  cache_cfg.coalesce_writes = true;
  BlockFlashCache cache(&ssd, cache_cfg);
  cache.AttachTelemetry(&tel, "cache");

  SimTime t = 0;
  Rng rng(9);
  for (std::uint64_t i = 0; i < 4000; ++i) {
    auto put = cache.Put(rng.NextBelow(1200), 8 * 1024, t);
    ASSERT_TRUE(put.ok()) << put.status().ToString();
    t = std::max(t, put.value());
  }
  ASSERT_GT(cache.stats().segments_recycled, 0u);

  ExpectConservation(tel.provenance, "conv.flash", ssd.flash().stats());
  const auto* ledger = tel.provenance.FindDevice("conv.flash");
  ASSERT_NE(ledger, nullptr);
  EXPECT_GT(WriteProvenance::ProgramCount(*ledger, WriteCause::kCacheEviction), 0u);
  ExpectFactorizationIdentity(tel.provenance, {"cache"}, "conv.flash");
}

TEST(ProvenanceTest, ZnsCacheEvictionErasesAttributed) {
  MatchedConfig cfg = MatchedConfig::Small();
  cfg.flash.store_data = false;
  Telemetry tel;
  ZnsDevice device(cfg.flash, cfg.zns);
  device.AttachTelemetry(&tel, "zns");
  ZnsFlashCache cache(&device, ZnsCacheConfig{});
  cache.AttachTelemetry(&tel, "cache");

  SimTime t = 0;
  Rng rng(9);
  for (std::uint64_t i = 0; i < 6000; ++i) {
    auto put = cache.Put(i, 16 * 1024, t);
    ASSERT_TRUE(put.ok()) << put.status().ToString();
    t = std::max(t, put.value());
  }
  ASSERT_GT(cache.stats().segments_recycled, 0u);

  ExpectConservation(tel.provenance, "zns.flash", device.flash().stats());
  const auto* ledger = tel.provenance.FindDevice("zns.flash");
  ASSERT_NE(ledger, nullptr);
  EXPECT_GT(WriteProvenance::EraseCount(*ledger, WriteCause::kCacheEviction), 0u);
}

// Same seed, same stack -> byte-identical ledger dump (the serialization benches write via
// --ledger).
TEST(ProvenanceTest, SameSeedLedgerDumpsAreByteIdentical) {
  auto run = [] {
    MatchedConfig cfg = MatchedConfig::Small();
    cfg.flash.store_data = false;
    Telemetry tel;
    ZnsDevice device(cfg.flash, cfg.zns);
    device.AttachTelemetry(&tel, "zns");
    HostFtlBlockDevice block(&device, HostFtlConfig{});
    block.AttachTelemetry(&tel, "emul");
    Rng rng(23);
    SimTime t = 0;
    const std::uint64_t logical = block.num_blocks();
    for (std::uint64_t i = 0; i < logical * 2; ++i) {
      auto w = block.WriteBlocks(Lba{rng.NextBelow(logical)}, 1, t);
      EXPECT_TRUE(w.ok());
      t = std::max(t, w.value());
      block.Pump(t, false, 1);
    }
    return tel.provenance.Dump();
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_FALSE(a.empty());
  EXPECT_NE(a.find("device zns.flash"), std::string::npos);
  EXPECT_NE(a.find("block_emulation_reclaim"), std::string::npos);
  EXPECT_EQ(a, b);
}

// Satellite fix: spans still open at teardown are drained into their abandoned counters
// instead of silently vanishing from the final snapshot.
TEST(ProvenanceTest, AbandonOpenCountsLeakedSpans) {
  Telemetry tel;
  Tracer::Span leaked = tel.tracer.Start("op.write", 0);
  Tracer::Span leaked2 = tel.tracer.Start("op.read", 5);
  ASSERT_EQ(tel.tracer.open_spans(), 2u);
  tel.tracer.AbandonOpen();
  EXPECT_EQ(tel.tracer.open_spans(), 0u);
  leaked.End(10);  // Inert: the span was already drained.
  bool found = false;
  for (const auto& entry : tel.registry.Snapshot()) {
    if (entry.name == "span.op.write.abandoned") {
      found = true;
      EXPECT_EQ(entry.counter, 1u);
    }
    EXPECT_NE(entry.name, "span.op.write.total_ns");  // End() after drain records nothing.
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace blockhead
