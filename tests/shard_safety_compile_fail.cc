// Negative-space proof for the shard-safety capability annotations (clang-only section of
// the strong_id_compile_fail ctest, see tests/compile_fail_test.sh). Each TS_EXPECT_FAIL_n
// case must be rejected by clang's -Werror=thread-safety; the baseline with no case defined
// must compile clean, otherwise every "expected failure" would pass vacuously. Under GCC the
// annotations expand to nothing, so the harness only runs this file when the compiler is
// clang.

#include <cstdint>

#include "src/core/shard_safety.h"

namespace blockhead {
namespace {

// Members are public so every rejection below is a thread-safety diagnostic, never an
// access-control error masquerading as one.
class GuardedCounter {
 public:
  void Bump() BLOCKHEAD_REQUIRES(mu_) { value_ += 1; }

  ShardMutex mu_;
  std::uint64_t value_ BLOCKHEAD_GUARDED_BY(mu_) = 0;
};

// Baseline: correctly locked accesses must be clean under -Werror=thread-safety.
inline void ScopedLockedUse(GuardedCounter& c) {
  ShardLock lock(c.mu_);
  c.value_ += 1;
  c.Bump();
}

inline void ManuallyLockedUse(GuardedCounter& c) {
  c.mu_.Acquire();
  c.value_ += 1;
  c.mu_.Release();
}

#ifdef TS_EXPECT_FAIL_1
// Writing a GUARDED_BY member without holding its capability.
inline void UnguardedWrite(GuardedCounter& c) { c.value_ += 1; }
#endif

#ifdef TS_EXPECT_FAIL_2
// Calling a REQUIRES method without holding the capability it names.
inline void CallWithoutLock(GuardedCounter& c) { c.Bump(); }
#endif

#ifdef TS_EXPECT_FAIL_3
// Acquire without Release: the capability is still held when the function returns.
inline void AcquireWithoutRelease(GuardedCounter& c) {
  c.mu_.Acquire();
  c.value_ += 1;
}
#endif

}  // namespace
}  // namespace blockhead
