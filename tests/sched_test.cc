// Unit tests for the host GC scheduling policies.

#include <gtest/gtest.h>

#include "src/sched/gc_scheduler.h"

namespace blockhead {
namespace {

GcSchedulerConfig Config(GcSchedPolicy policy) {
  GcSchedulerConfig c;
  c.policy = policy;
  c.critical_free_fraction = 0.05;
  c.low_free_fraction = 0.25;
  c.min_gc_interval = 100;
  return c;
}

TEST(GcSchedulerTest, PolicyNames) {
  EXPECT_STREQ(GcSchedPolicyName(GcSchedPolicy::kInline), "inline");
  EXPECT_STREQ(GcSchedPolicyName(GcSchedPolicy::kBackground), "background");
  EXPECT_STREQ(GcSchedPolicyName(GcSchedPolicy::kReadPriority), "read-priority");
  EXPECT_STREQ(GcSchedPolicyName(GcSchedPolicy::kRateLimited), "rate-limited");
}

TEST(GcSchedulerTest, NoPolicyRunsWithAmpleSpace) {
  for (const auto policy : {GcSchedPolicy::kInline, GcSchedPolicy::kBackground,
                            GcSchedPolicy::kReadPriority, GcSchedPolicy::kRateLimited}) {
    GcScheduler sched(Config(policy));
    EXPECT_FALSE(sched.ShouldRun(0.9, false, 0)) << GcSchedPolicyName(policy);
    EXPECT_FALSE(sched.ShouldRun(0.26, true, 0)) << GcSchedPolicyName(policy);
  }
}

TEST(GcSchedulerTest, EveryPolicyRunsWhenCritical) {
  for (const auto policy : {GcSchedPolicy::kInline, GcSchedPolicy::kBackground,
                            GcSchedPolicy::kReadPriority, GcSchedPolicy::kRateLimited}) {
    GcScheduler sched(Config(policy));
    EXPECT_TRUE(sched.ShouldRun(0.04, true, 0)) << GcSchedPolicyName(policy);
    EXPECT_TRUE(sched.Critical(0.04));
    EXPECT_FALSE(sched.Critical(0.06));
  }
}

TEST(GcSchedulerTest, InlineNeverRunsEarly) {
  GcScheduler sched(Config(GcSchedPolicy::kInline));
  EXPECT_FALSE(sched.ShouldRun(0.10, false, 0));
  EXPECT_FALSE(sched.ShouldRun(0.10, true, 0));
}

TEST(GcSchedulerTest, BackgroundRunsBelowLowWatermark) {
  GcScheduler sched(Config(GcSchedPolicy::kBackground));
  EXPECT_TRUE(sched.ShouldRun(0.20, false, 0));
  EXPECT_TRUE(sched.ShouldRun(0.20, true, 0));
}

TEST(GcSchedulerTest, ReadPriorityDefersWhileReadsPending) {
  GcScheduler sched(Config(GcSchedPolicy::kReadPriority));
  EXPECT_TRUE(sched.ShouldRun(0.20, false, 0));
  EXPECT_FALSE(sched.ShouldRun(0.20, true, 0));
  // ...but not when space is critical.
  EXPECT_TRUE(sched.ShouldRun(0.04, true, 0));
}

TEST(GcSchedulerTest, RateLimiterSpacesRuns) {
  GcScheduler sched(Config(GcSchedPolicy::kRateLimited));
  EXPECT_TRUE(sched.ShouldRun(0.20, false, 0));
  sched.NoteRun(0);
  EXPECT_FALSE(sched.ShouldRun(0.20, false, 50));
  EXPECT_TRUE(sched.ShouldRun(0.20, false, 100));
  // Criticality overrides the rate limit.
  sched.NoteRun(100);
  EXPECT_TRUE(sched.ShouldRun(0.01, false, 101));
}

}  // namespace
}  // namespace blockhead
