// Tests for the mini-LSM KV store and its storage environments: SSTable format, bloom
// filters, BlockEnv allocation, put/get/delete, compaction correctness, recovery on both
// backends, and the lifetime-hint plumbing.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "src/ftl/conventional_ssd.h"
#include "src/kv/block_env.h"
#include "src/kv/kv_store.h"
#include "src/kv/sstable.h"
#include "src/util/rng.h"

namespace blockhead {
namespace {

FlashConfig SmallFlash() {
  FlashConfig c;
  c.geometry = FlashGeometry::Small();
  c.timing = FlashTiming::FastForTests();
  return c;
}

ZnsConfig DeviceConfig() {
  ZnsConfig z;
  z.max_active_zones = 10;
  z.max_open_zones = 10;
  return z;
}

std::string KeyOf(std::uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "key%08llu", static_cast<unsigned long long>(n));
  return buf;
}

std::string ValueOf(std::uint64_t n, std::size_t len = 64) {
  std::string v = "value-" + std::to_string(n) + "-";
  while (v.size() < len) {
    v += static_cast<char>('a' + (n + v.size()) % 26);
  }
  v.resize(len);
  return v;
}

// --- BloomFilter ---

TEST(BloomFilterTest, NoFalseNegatives) {
  std::vector<std::string> keys;
  for (int i = 0; i < 1000; ++i) {
    keys.push_back(KeyOf(static_cast<std::uint64_t>(i)));
  }
  const BloomFilter f = BloomFilter::Build(keys, 10);
  for (const auto& key : keys) {
    EXPECT_TRUE(f.MayContain(key));
  }
}

TEST(BloomFilterTest, LowFalsePositiveRate) {
  std::vector<std::string> keys;
  for (int i = 0; i < 1000; ++i) {
    keys.push_back(KeyOf(static_cast<std::uint64_t>(i)));
  }
  const BloomFilter f = BloomFilter::Build(keys, 10);
  int false_positives = 0;
  for (int i = 1000; i < 11000; ++i) {
    if (f.MayContain(KeyOf(static_cast<std::uint64_t>(i)))) {
      ++false_positives;
    }
  }
  EXPECT_LT(false_positives, 300) << "10 bits/key should give ~1% FPR";
}

TEST(BloomFilterTest, SerializeRoundTrip) {
  std::vector<std::string> keys = {"a", "b", "c"};
  const BloomFilter f = BloomFilter::Build(keys, 10);
  const auto bytes = f.Serialize();
  auto g = BloomFilter::Deserialize(bytes);
  ASSERT_TRUE(g.ok());
  for (const auto& key : keys) {
    EXPECT_TRUE(g->MayContain(key));
  }
  EXPECT_FALSE(BloomFilter::Deserialize(std::span<const std::uint8_t>(bytes.data(), 3)).ok());
}

TEST(BloomFilterTest, EmptyFilterNeverExcludes) {
  BloomFilter f;
  EXPECT_TRUE(f.MayContain("anything"));
}

// --- BlockEnv ---

class BlockEnvTest : public ::testing::Test {
 protected:
  BlockEnvTest() : ssd_(SmallFlash(), FtlConfig{}), env_(&ssd_) {}
  ConventionalSsd ssd_;
  BlockEnv env_;
};

TEST_F(BlockEnvTest, CreateAppendReadDelete) {
  ASSERT_TRUE(env_.CreateFile("f", Lifetime::kNone, 0).ok());
  EXPECT_TRUE(env_.Exists("f"));
  EXPECT_EQ(env_.CreateFile("f", Lifetime::kNone, 0).code(), ErrorCode::kAlreadyExists);
  std::vector<std::uint8_t> data(10000);
  Rng rng(1);
  for (auto& b : data) {
    b = static_cast<std::uint8_t>(rng.Next());
  }
  ASSERT_TRUE(env_.Append("f", data, 0).ok());
  EXPECT_EQ(env_.FileSize("f").value(), data.size());
  std::vector<std::uint8_t> out(data.size());
  ASSERT_TRUE(env_.Read("f", 0, out, 0).ok());
  EXPECT_EQ(out, data);
  const std::uint64_t free_before = env_.FreePages();
  ASSERT_TRUE(env_.DeleteFile("f", 0).ok());
  EXPECT_FALSE(env_.Exists("f"));
  EXPECT_GT(env_.FreePages(), free_before);
}

TEST_F(BlockEnvTest, SyncPadsTailAndAppendsContinue) {
  ASSERT_TRUE(env_.CreateFile("f", Lifetime::kNone, 0).ok());
  std::vector<std::uint8_t> a(100, 1);
  std::vector<std::uint8_t> b(5000, 2);
  ASSERT_TRUE(env_.Append("f", a, 0).ok());
  ASSERT_TRUE(env_.Sync("f", 0).ok());
  ASSERT_TRUE(env_.Append("f", b, 0).ok());
  std::vector<std::uint8_t> out(5100);
  ASSERT_TRUE(env_.Read("f", 0, out, 0).ok());
  EXPECT_EQ(std::vector<std::uint8_t>(out.begin(), out.begin() + 100), a);
  EXPECT_EQ(std::vector<std::uint8_t>(out.begin() + 100, out.end()), b);
}

TEST_F(BlockEnvTest, FragmentationAfterChurn) {
  // Interleave create/delete so free space fragments; files must still read back correctly.
  Rng rng(2);
  std::map<std::string, std::uint8_t> truth;
  SimTime t = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string name = "f" + std::to_string(i);
    ASSERT_TRUE(env_.CreateFile(name, Lifetime::kNone, t).ok());
    const std::uint8_t tag = static_cast<std::uint8_t>(i);
    std::vector<std::uint8_t> data((rng.NextBelow(8) + 1) * 4096, tag);
    auto a = env_.Append(name, data, t);
    ASSERT_TRUE(a.ok());
    t = a.value();
    truth[name] = tag;
    if (truth.size() > 20) {
      auto victim = truth.begin();
      std::advance(victim, static_cast<long>(rng.NextBelow(truth.size())));
      ASSERT_TRUE(env_.DeleteFile(victim->first, t).ok());
      truth.erase(victim);
    }
  }
  for (const auto& [name, tag] : truth) {
    const auto size = env_.FileSize(name);
    ASSERT_TRUE(size.ok());
    std::vector<std::uint8_t> out(size.value());
    ASSERT_TRUE(env_.Read(name, 0, out, t).ok());
    for (const auto byte : out) {
      ASSERT_EQ(byte, tag);
    }
  }
}

// --- SSTable ---

TEST(SSTableTest, BuildAndReadBack) {
  ConventionalSsd ssd(SmallFlash(), FtlConfig{});
  BlockEnv env(&ssd);
  SSTableBuilder builder(&env, "t.sst", SSTableBuilderOptions{});
  ASSERT_TRUE(builder.Start(0).ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(builder
                    .Add(KeyOf(static_cast<std::uint64_t>(i)), KvEntryType::kValue,
                         ValueOf(static_cast<std::uint64_t>(i)), 0)
                    .ok());
  }
  auto finished = builder.Finish(0);
  ASSERT_TRUE(finished.ok());
  EXPECT_EQ(builder.smallest(), KeyOf(0));
  EXPECT_EQ(builder.largest(), KeyOf(499));

  auto reader = SSTableReader::Open(&env, "t.sst", finished.value());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader.value()->entry_count(), 500u);
  for (int i = 0; i < 500; i += 7) {
    auto got = reader.value()->Get(KeyOf(static_cast<std::uint64_t>(i)), 0);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got->found);
    EXPECT_EQ(got->value, ValueOf(static_cast<std::uint64_t>(i)));
  }
  auto missing = reader.value()->Get("zzz-not-there", 0);
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing->found);
}

TEST(SSTableTest, TombstonesRoundTrip) {
  ConventionalSsd ssd(SmallFlash(), FtlConfig{});
  BlockEnv env(&ssd);
  SSTableBuilder builder(&env, "t.sst", SSTableBuilderOptions{});
  ASSERT_TRUE(builder.Start(0).ok());
  ASSERT_TRUE(builder.Add("k1", KvEntryType::kTombstone, "", 0).ok());
  ASSERT_TRUE(builder.Add("k2", KvEntryType::kValue, "v2", 0).ok());
  ASSERT_TRUE(builder.Finish(0).ok());
  auto reader = SSTableReader::Open(&env, "t.sst", 0);
  ASSERT_TRUE(reader.ok());
  auto g1 = reader.value()->Get("k1", 0);
  ASSERT_TRUE(g1.ok());
  EXPECT_TRUE(g1->found);
  EXPECT_EQ(g1->type, KvEntryType::kTombstone);
  auto all = reader.value()->ReadAll(0);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 2u);
}

TEST(SSTableTest, ReadAllPreservesOrder) {
  ConventionalSsd ssd(SmallFlash(), FtlConfig{});
  BlockEnv env(&ssd);
  SSTableBuilder builder(&env, "t.sst", SSTableBuilderOptions{});
  ASSERT_TRUE(builder.Start(0).ok());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(
        builder.Add(KeyOf(static_cast<std::uint64_t>(i)), KvEntryType::kValue, "v", 0).ok());
  }
  ASSERT_TRUE(builder.Finish(0).ok());
  auto reader = SSTableReader::Open(&env, "t.sst", 0);
  ASSERT_TRUE(reader.ok());
  auto all = reader.value()->ReadAll(0);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 300u);
  for (std::size_t i = 1; i < all->size(); ++i) {
    EXPECT_LT((*all)[i - 1].key, (*all)[i].key);
  }
}


TEST(SSTableTest, CorruptFooterRejected) {
  ConventionalSsd ssd(SmallFlash(), FtlConfig{});
  BlockEnv env(&ssd);
  // A "table" that is random bytes: Open must fail cleanly, not crash.
  ASSERT_TRUE(env.CreateFile("junk.sst", Lifetime::kNone, 0).ok());
  std::vector<std::uint8_t> junk(4096);
  Rng rng(9);
  for (auto& b : junk) {
    b = static_cast<std::uint8_t>(rng.Next());
  }
  ASSERT_TRUE(env.Append("junk.sst", junk, 0).ok());
  ASSERT_TRUE(env.Sync("junk.sst", 0).ok());
  auto reader = SSTableReader::Open(&env, "junk.sst", 0);
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.code(), ErrorCode::kCorruption);
  // A file smaller than the footer is also rejected.
  ASSERT_TRUE(env.CreateFile("tiny.sst", Lifetime::kNone, 0).ok());
  ASSERT_TRUE(env.Append("tiny.sst", std::vector<std::uint8_t>(10, 1), 0).ok());
  auto tiny = SSTableReader::Open(&env, "tiny.sst", 0);
  EXPECT_FALSE(tiny.ok());
  // A missing file reports not-found.
  EXPECT_EQ(SSTableReader::Open(&env, "absent.sst", 0).code(), ErrorCode::kNotFound);
}

TEST(SSTableTest, ScanFromReadsOnlyNeededBlocks) {
  ConventionalSsd ssd(SmallFlash(), FtlConfig{});
  BlockEnv env(&ssd);
  SSTableBuilder builder(&env, "t.sst", SSTableBuilderOptions{});
  ASSERT_TRUE(builder.Start(0).ok());
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(builder
                    .Add(KeyOf(static_cast<std::uint64_t>(i)), KvEntryType::kValue,
                         ValueOf(static_cast<std::uint64_t>(i)), 0)
                    .ok());
  }
  ASSERT_TRUE(builder.Finish(0).ok());
  auto reader = SSTableReader::Open(&env, "t.sst", 0);
  ASSERT_TRUE(reader.ok());
  const std::uint64_t reads_before = ssd.ftl_stats().host_pages_read;
  auto scanned = reader.value()->ScanFrom(KeyOf(500), 10, 0);
  ASSERT_TRUE(scanned.ok());
  ASSERT_EQ(scanned->size(), 10u);
  EXPECT_EQ((*scanned)[0].key, KeyOf(500));
  EXPECT_EQ((*scanned)[9].key, KeyOf(509));
  const std::uint64_t reads_used = ssd.ftl_stats().host_pages_read - reads_before;
  EXPECT_LT(reads_used, 6u) << "a 10-entry scan must not read the whole table";
  // Scan from beyond the last key: empty.
  auto empty = reader.value()->ScanFrom("zzzz", 10, 0);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

// --- KvStore on both environments ---

enum class Backend { kBlock, kZns };

class KvStoreTest : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override {
    if (GetParam() == Backend::kBlock) {
      ssd_ = std::make_unique<ConventionalSsd>(SmallFlash(), FtlConfig{});
      env_ = std::make_unique<BlockEnv>(ssd_.get());
    } else {
      zns_ = std::make_unique<ZnsDevice>(SmallFlash(), DeviceConfig());
      auto fs = ZoneFileSystem::Format(zns_.get(), ZoneFileConfig{}, 0);
      ASSERT_TRUE(fs.ok());
      fs_ = std::move(fs).value();
      env_ = std::make_unique<ZoneEnv>(fs_.get());
    }
    KvConfig config;
    config.memtable_bytes = 16 * kKiB;
    config.level_base_bytes = 64 * kKiB;
    config.target_table_bytes = 32 * kKiB;
    config.level_multiplier = 4.0;
    auto store = KvStore::Open(env_.get(), config, 0);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    store_ = std::move(store).value();
  }

  void Reopen() {
    store_.reset();
    KvConfig config;
    config.memtable_bytes = 16 * kKiB;
    config.level_base_bytes = 64 * kKiB;
    config.target_table_bytes = 32 * kKiB;
    config.level_multiplier = 4.0;
    auto store = KvStore::Open(env_.get(), config, 0);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    store_ = std::move(store).value();
  }

  std::unique_ptr<ConventionalSsd> ssd_;
  std::unique_ptr<ZnsDevice> zns_;
  std::unique_ptr<ZoneFileSystem> fs_;
  std::unique_ptr<Env> env_;
  std::unique_ptr<KvStore> store_;
};

TEST_P(KvStoreTest, PutGet) {
  ASSERT_TRUE(store_->Put("k", "v", 0).ok());
  auto got = store_->Get("k", 0);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->found);
  EXPECT_EQ(got->value, "v");
  auto missing = store_->Get("nope", 0);
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing->found);
}

TEST_P(KvStoreTest, OverwriteReturnsLatest) {
  SimTime t = 0;
  for (int i = 0; i < 5; ++i) {
    auto p = store_->Put("k", "v" + std::to_string(i), t);
    ASSERT_TRUE(p.ok());
    t = p.value();
  }
  auto got = store_->Get("k", t);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "v4");
}

TEST_P(KvStoreTest, DeleteHidesKey) {
  ASSERT_TRUE(store_->Put("k", "v", 0).ok());
  ASSERT_TRUE(store_->Delete("k", 0).ok());
  auto got = store_->Get("k", 0);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->found);
  // Even after a flush pushes the tombstone into a table.
  ASSERT_TRUE(store_->Flush(0).ok());
  got = store_->Get("k", 0);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->found);
}

TEST_P(KvStoreTest, ManyKeysSurviveFlushesAndCompactions) {
  SimTime t = 0;
  std::map<std::string, std::string> truth;
  Rng rng(3);
  for (std::uint64_t i = 0; i < 4000; ++i) {
    const std::uint64_t k = rng.NextBelow(800);
    const std::string key = KeyOf(k);
    const std::string value = ValueOf(i);
    auto p = store_->Put(key, value, t);
    ASSERT_TRUE(p.ok()) << p.status().ToString() << " at op " << i;
    t = p.value();
    truth[key] = value;
  }
  EXPECT_GT(store_->stats().flushes, 2u);
  EXPECT_GT(store_->stats().compactions, 0u);
  for (const auto& [key, value] : truth) {
    auto got = store_->Get(key, t);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got->found) << key;
    ASSERT_EQ(got->value, value) << key;
  }
  EXPECT_GT(store_->LsmWriteAmplification(), 1.0);
}

TEST_P(KvStoreTest, DeletesSurviveCompaction) {
  SimTime t = 0;
  for (std::uint64_t i = 0; i < 500; ++i) {
    auto p = store_->Put(KeyOf(i), ValueOf(i), t);
    ASSERT_TRUE(p.ok());
    t = p.value();
  }
  for (std::uint64_t i = 0; i < 500; i += 2) {
    auto d = store_->Delete(KeyOf(i), t);
    ASSERT_TRUE(d.ok());
    t = d.value();
  }
  ASSERT_TRUE(store_->Flush(t).ok());
  for (std::uint64_t i = 0; i < 500; ++i) {
    auto got = store_->Get(KeyOf(i), t);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->found, i % 2 == 1) << i;
  }
}

TEST_P(KvStoreTest, RecoverySeesFlushedData) {
  SimTime t = 0;
  for (std::uint64_t i = 0; i < 300; ++i) {
    auto p = store_->Put(KeyOf(i), ValueOf(i), t);
    ASSERT_TRUE(p.ok());
    t = p.value();
  }
  ASSERT_TRUE(store_->Flush(t).ok());
  Reopen();
  for (std::uint64_t i = 0; i < 300; i += 13) {
    auto got = store_->Get(KeyOf(i), t);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got->found) << i;
    ASSERT_EQ(got->value, ValueOf(i));
  }
}

TEST_P(KvStoreTest, RecoveryReplaysWal) {
  // Writes that never hit a flush must come back from the WAL (same-env reopen; the WAL tail
  // is still buffered, matching a process restart without a device crash).
  ASSERT_TRUE(store_->Put("wal-key", "wal-value", 0).ok());
  Reopen();
  auto got = store_->Get("wal-key", 0);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->found);
  EXPECT_EQ(got->value, "wal-value");
}

TEST_P(KvStoreTest, GetLatencyIncludesDeviceTime) {
  SimTime t = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    auto p = store_->Put(KeyOf(i), ValueOf(i, 128), t);
    ASSERT_TRUE(p.ok());
    t = p.value();
  }
  ASSERT_TRUE(store_->Flush(t).ok());
  const SimTime probe_time = t + kSecond;
  auto got = store_->Get(KeyOf(1), probe_time);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->found);
  EXPECT_GT(got->completion, probe_time) << "a table read must consume device time";
}


TEST_P(KvStoreTest, ScanReturnsSortedRange) {
  SimTime t = 0;
  for (std::uint64_t i = 0; i < 900; ++i) {
    auto p = store_->Put(KeyOf(i), ValueOf(i), t);
    ASSERT_TRUE(p.ok());
    t = p.value();
  }
  ASSERT_TRUE(store_->Flush(t).ok());  // Force table reads, not just memtable.
  auto s = store_->Scan(KeyOf(100), 20, t);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  ASSERT_EQ(s->entries.size(), 20u);
  for (std::size_t i = 0; i < s->entries.size(); ++i) {
    EXPECT_EQ(s->entries[i].first, KeyOf(100 + i));
    EXPECT_EQ(s->entries[i].second, ValueOf(100 + i));
  }
  EXPECT_GT(s->completion, t) << "table scans must consume device time";
}

TEST_P(KvStoreTest, ScanSeesNewestVersionsAndSkipsTombstones) {
  SimTime t = 0;
  for (std::uint64_t i = 0; i < 300; ++i) {
    auto p = store_->Put(KeyOf(i), ValueOf(i), t);
    ASSERT_TRUE(p.ok());
    t = p.value();
  }
  ASSERT_TRUE(store_->Flush(t).ok());
  // Overwrite some (newer versions in the memtable) and delete others.
  ASSERT_TRUE(store_->Put(KeyOf(10), "fresh", t).ok());
  ASSERT_TRUE(store_->Delete(KeyOf(11), t).ok());
  auto s = store_->Scan(KeyOf(9), 4, t);
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->entries.size(), 4u);
  EXPECT_EQ(s->entries[0].first, KeyOf(9));
  EXPECT_EQ(s->entries[1].first, KeyOf(10));
  EXPECT_EQ(s->entries[1].second, "fresh");
  EXPECT_EQ(s->entries[2].first, KeyOf(12)) << "deleted key 11 must not appear";
  EXPECT_EQ(s->entries[3].first, KeyOf(13));
}

TEST_P(KvStoreTest, ScanPastEndAndEmptyRange) {
  ASSERT_TRUE(store_->Put("m", "v", 0).ok());
  auto s = store_->Scan("z", 10, 0);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->entries.empty());
  auto s0 = store_->Scan("a", 0, 0);
  ASSERT_TRUE(s0.ok());
  EXPECT_TRUE(s0->entries.empty());
}


TEST_P(KvStoreTest, ManifestRollingReclaimsSpaceAndRecovers) {
  // Tiny roll threshold: the manifest is rewritten as a snapshot many times during churn, and
  // recovery still sees the correct table set.
  store_.reset();
  KvConfig config;
  config.memtable_bytes = 8 * kKiB;
  config.level_base_bytes = 64 * kKiB;
  config.target_table_bytes = 32 * kKiB;
  config.level_multiplier = 4.0;
  config.manifest_roll_bytes = 4 * kKiB;
  auto store = KvStore::Open(env_.get(), config, 0);
  ASSERT_TRUE(store.ok());
  SimTime t = 0;
  Rng rng(13);
  for (std::uint64_t i = 0; i < 2500; ++i) {
    auto p = store.value()->Put(KeyOf(rng.NextBelow(400)), ValueOf(i), t);
    ASSERT_TRUE(p.ok());
    t = p.value();
  }
  ASSERT_TRUE(store.value()->Flush(t).ok());
  // The manifest must have stayed small (rolled), not grown monotonically.
  const auto manifest_size = env_->FileSize("MANIFEST");
  ASSERT_TRUE(manifest_size.ok());
  EXPECT_LT(manifest_size.value(), 64 * kKiB);
  // Recovery from a rolled manifest.
  std::string probe_key;
  std::string probe_value;
  for (std::uint64_t k = 0; k < 400; ++k) {
    auto g = store.value()->Get(KeyOf(k), t);
    ASSERT_TRUE(g.ok());
    if (g->found) {
      probe_key = KeyOf(k);
      probe_value = g->value;
      break;
    }
  }
  ASSERT_FALSE(probe_key.empty());
  store.value().reset();
  auto reopened = KvStore::Open(env_.get(), config, 0);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto g = reopened.value()->Get(probe_key, t);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->found);
  EXPECT_EQ(g->value, probe_value);
}

INSTANTIATE_TEST_SUITE_P(Backends, KvStoreTest, ::testing::Values(Backend::kBlock, Backend::kZns),
                         [](const ::testing::TestParamInfo<Backend>& param_info) {
                           return param_info.param == Backend::kBlock ? "BlockEnv" : "ZoneEnv";
                         });

TEST(KvLifetimeTest, LevelsMapToDistinctHints) {
  ZnsDevice dev(SmallFlash(), DeviceConfig());
  auto fs = ZoneFileSystem::Format(&dev, ZoneFileConfig{}, 0);
  ASSERT_TRUE(fs.ok());
  ZoneEnv env(fs.value().get());
  KvConfig config;
  config.memtable_bytes = 8 * kKiB;
  auto store = KvStore::Open(&env, config, 0);
  ASSERT_TRUE(store.ok());
  SimTime t = 0;
  for (std::uint64_t i = 0; i < 600; ++i) {
    auto p = store.value()->Put(KeyOf(i), ValueOf(i), t);
    ASSERT_TRUE(p.ok());
    t = p.value();
  }
  ASSERT_TRUE(store.value()->Flush(t).ok());
  // SSTables and logs must exist with role-appropriate hints.
  std::set<Lifetime> seen;
  for (const auto& name : fs.value()->ListFiles()) {
    seen.insert(fs.value()->FileHint(name).value());
  }
  EXPECT_GT(seen.size(), 1u) << "different file roles should carry different lifetime hints";
}

}  // namespace
}  // namespace blockhead
