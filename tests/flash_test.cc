// Unit tests for the NAND flash substrate: addressing, program-order enforcement,
// erase-before-program, timing/parallelism, wear and bad blocks, data integrity, stats.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/flash/flash_device.h"

namespace blockhead {
namespace {

FlashConfig TestConfig() {
  FlashConfig c;
  c.geometry = FlashGeometry::Small();
  c.timing = FlashTiming::FastForTests();
  return c;
}

TEST(GeometryTest, DerivedQuantities) {
  FlashGeometry g = FlashGeometry::Small();
  EXPECT_EQ(g.total_planes(), 4u);
  EXPECT_EQ(g.total_blocks(), 4u * 64);
  EXPECT_EQ(g.block_bytes(), 32u * 4096);
  EXPECT_EQ(g.capacity_bytes(), 4ull * 64 * 32 * 4096);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(GeometryTest, InvalidGeometryRejected) {
  FlashGeometry g = FlashGeometry::Small();
  g.page_size = 0;
  EXPECT_FALSE(g.Validate().ok());
}

TEST(GeometryTest, FlatIndexRoundTrip) {
  const FlashGeometry g = FlashGeometry::Small();
  for (std::uint64_t flat = 0; flat < g.total_pages(); flat += 97) {
    const PhysAddr a = AddrFromFlatPage(g, Ppa{flat});
    EXPECT_EQ(FlatPageIndex(g, a).value(), flat);
    EXPECT_LT(a.channel.value(), g.channels);
    EXPECT_LT(a.plane.value(), g.planes_per_channel);
    EXPECT_LT(a.block.value(), g.blocks_per_plane);
    EXPECT_LT(a.page.value(), g.pages_per_block);
  }
}

TEST(TimingTest, EraseRoughlySixTimesProgramForTlc) {
  const FlashTiming t = FlashTiming::Tlc();
  const double ratio = static_cast<double>(t.block_erase) / static_cast<double>(t.page_program);
  EXPECT_GE(ratio, 5.0);
  EXPECT_LE(ratio, 7.0);
}

TEST(TimingTest, EnduranceShrinksWithBitsPerCell) {
  EXPECT_GT(FlashTiming::Slc().endurance_cycles, FlashTiming::Mlc().endurance_cycles);
  EXPECT_GT(FlashTiming::Mlc().endurance_cycles, FlashTiming::Tlc().endurance_cycles);
  EXPECT_GT(FlashTiming::Tlc().endurance_cycles, FlashTiming::Qlc().endurance_cycles);
}

TEST(TimingTest, LatencyGrowsWithBitsPerCell) {
  EXPECT_LT(FlashTiming::Slc().page_program, FlashTiming::Tlc().page_program);
  EXPECT_LT(FlashTiming::Tlc().page_program, FlashTiming::Qlc().page_program);
  EXPECT_EQ(FlashTiming::ForCell(CellType::kQlc).page_program,
            FlashTiming::Qlc().page_program);
}

TEST(FlashDeviceTest, ProgramThenReadReturnsData) {
  FlashDevice dev(TestConfig());
  std::vector<std::uint8_t> data(4096);
  std::iota(data.begin(), data.end(), 0);
  const PhysAddr a{ChannelId{0}, PlaneId{0}, BlockId{0}, PageId{0}};
  auto w = dev.ProgramPage(a, 0, data);
  ASSERT_TRUE(w.ok());
  std::vector<std::uint8_t> out(4096, 0xFF);
  auto r = dev.ReadPage(a, w.value(), out);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
}

TEST(FlashDeviceTest, UnwrittenPageReadsZeroes) {
  FlashDevice dev(TestConfig());
  std::vector<std::uint8_t> out(4096, 0xFF);
  auto r = dev.ReadPage(PhysAddr{ChannelId{0}, PlaneId{0}, BlockId{0}, PageId{5}}, 0, out);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, std::vector<std::uint8_t>(4096, 0));
}

TEST(FlashDeviceTest, OutOfRangeAddressRejected) {
  FlashDevice dev(TestConfig());
  EXPECT_EQ(dev.ReadPage(PhysAddr{ChannelId{9}, PlaneId{0}, BlockId{0}, PageId{0}},
      0).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(dev.ProgramPage(PhysAddr{ChannelId{0}, PlaneId{9}, BlockId{0}, PageId{0}},
      0).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(dev.ProgramPage(PhysAddr{ChannelId{0}, PlaneId{0}, BlockId{999}, PageId{0}},
      0).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(dev.EraseBlock(ChannelId{0}, PlaneId{0}, BlockId{999}, 0).code(),
            ErrorCode::kOutOfRange);
}

TEST(FlashDeviceTest, ProgramOrderEnforced) {
  FlashDevice dev(TestConfig());
  // Skipping ahead within a block is a program-order violation.
  EXPECT_EQ(dev.ProgramPage(PhysAddr{ChannelId{0}, PlaneId{0}, BlockId{0}, PageId{1}},
      0).code(), ErrorCode::kProgramOrderViolation);
  ASSERT_TRUE(dev.ProgramPage(PhysAddr{ChannelId{0}, PlaneId{0}, BlockId{0}, PageId{0}}, 0).ok());
  // Rewriting an already-programmed page requires an erase.
  EXPECT_EQ(dev.ProgramPage(PhysAddr{ChannelId{0}, PlaneId{0}, BlockId{0}, PageId{0}},
      0).code(), ErrorCode::kEraseBeforeProgram);
  ASSERT_TRUE(dev.ProgramPage(PhysAddr{ChannelId{0}, PlaneId{0}, BlockId{0}, PageId{1}}, 0).ok());
}

TEST(FlashDeviceTest, EraseRecyclesBlock) {
  FlashDevice dev(TestConfig());
  const FlashGeometry g = dev.geometry();
  SimTime t = 0;
  for (std::uint32_t p = 0; p < g.pages_per_block; ++p) {
    auto w = dev.ProgramPage(PhysAddr{ChannelId{0}, PlaneId{0}, BlockId{3}, PageId{p}}, t);
    ASSERT_TRUE(w.ok());
    t = w.value();
  }
  // Block full: next program fails.
  EXPECT_EQ(dev.ProgramPage(PhysAddr{ChannelId{0}, PlaneId{0}, BlockId{3}, PageId{0}},
      t).code(), ErrorCode::kEraseBeforeProgram);
  auto e = dev.EraseBlock(ChannelId{0}, PlaneId{0}, BlockId{3}, t);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(dev.block_status(ChannelId{0}, PlaneId{0}, BlockId{3}).erase_count, 1u);
  EXPECT_EQ(dev.block_status(ChannelId{0}, PlaneId{0}, BlockId{3}).next_page, 0u);
  // Reprogram from page 0 works, and the old data is gone.
  std::vector<std::uint8_t> out(4096, 0xFF);
  ASSERT_TRUE(dev.ProgramPage(PhysAddr{ChannelId{0}, PlaneId{0}, BlockId{3}, PageId{0}},
      e.value()).ok());
  ASSERT_TRUE(dev.ReadPage(PhysAddr{ChannelId{0}, PlaneId{0}, BlockId{3}, PageId{0}},
      e.value(), out).ok());
  EXPECT_EQ(out, std::vector<std::uint8_t>(4096, 0));
}

TEST(FlashDeviceTest, TimingSerializesWithinPlane) {
  FlashConfig c = TestConfig();
  FlashDevice dev(c);
  // Two programs to the same plane must serialize on the plane.
  auto w1 = dev.ProgramPage(PhysAddr{ChannelId{0}, PlaneId{0}, BlockId{0}, PageId{0}}, 0);
  auto w2 = dev.ProgramPage(PhysAddr{ChannelId{0}, PlaneId{0}, BlockId{1}, PageId{0}}, 0);
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE(w2.ok());
  EXPECT_GE(w2.value(), w1.value() + c.timing.page_program);
}

TEST(FlashDeviceTest, TimingParallelAcrossChannels) {
  FlashConfig c = TestConfig();
  FlashDevice dev(c);
  auto w1 = dev.ProgramPage(PhysAddr{ChannelId{0}, PlaneId{0}, BlockId{0}, PageId{0}}, 0);
  auto w2 = dev.ProgramPage(PhysAddr{ChannelId{1}, PlaneId{0}, BlockId{0}, PageId{0}}, 0);
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE(w2.ok());
  // Different channels: full overlap, completions within one op time of each other.
  EXPECT_EQ(w1.value(), w2.value());
}

TEST(FlashDeviceTest, TimingParallelAcrossPlanesSharesChannel) {
  FlashConfig c = TestConfig();
  FlashDevice dev(c);
  auto w1 = dev.ProgramPage(PhysAddr{ChannelId{0}, PlaneId{0}, BlockId{0}, PageId{0}}, 0);
  auto w2 = dev.ProgramPage(PhysAddr{ChannelId{0}, PlaneId{1}, BlockId{0}, PageId{0}}, 0);
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE(w2.ok());
  // Same channel: transfers serialize (one xfer offset), but cell programs overlap.
  EXPECT_EQ(w2.value(), w1.value() + c.timing.channel_xfer);
}

TEST(FlashDeviceTest, ReadWaitsForBusyPlane) {
  FlashConfig c = TestConfig();
  FlashDevice dev(c);
  ASSERT_TRUE(dev.ProgramPage(PhysAddr{ChannelId{0}, PlaneId{0}, BlockId{0}, PageId{0}}, 0).ok());
  // Erase occupies the plane...
  auto e = dev.EraseBlock(ChannelId{0}, PlaneId{0}, BlockId{1}, 0);
  ASSERT_TRUE(e.ok());
  // ...so a read issued at t=0 to that plane completes only after the erase.
  auto r = dev.ReadPage(PhysAddr{ChannelId{0}, PlaneId{0}, BlockId{0}, PageId{0}}, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.value(), e.value());
}

TEST(FlashDeviceTest, InternalOpsSkipHostBus) {
  FlashConfig c = TestConfig();
  FlashDevice dev(c);
  ASSERT_TRUE(dev.ProgramPage(PhysAddr{ChannelId{0}, PlaneId{0}, BlockId{0}, PageId{0}}, 0).ok());
  const std::uint64_t bus_after_host = dev.stats().host_bus_bytes;
  EXPECT_EQ(bus_after_host, 4096u);
  auto cp = dev.CopyPage(PhysAddr{ChannelId{0}, PlaneId{0}, BlockId{0}, PageId{0}},
      PhysAddr{ChannelId{0}, PlaneId{0}, BlockId{1}, PageId{0}}, 0);
  ASSERT_TRUE(cp.ok());
  EXPECT_EQ(dev.stats().host_bus_bytes, bus_after_host);  // Unchanged.
  EXPECT_EQ(dev.stats().internal_pages_read, 1u);
  EXPECT_EQ(dev.stats().internal_pages_programmed, 1u);
  EXPECT_EQ(dev.stats().host_pages_programmed, 1u);
}

TEST(FlashDeviceTest, CopyPagePreservesData) {
  FlashDevice dev(TestConfig());
  std::vector<std::uint8_t> data(4096, 0xAB);
  ASSERT_TRUE(dev.ProgramPage(PhysAddr{ChannelId{0}, PlaneId{0}, BlockId{0}, PageId{0}},
      0, data).ok());
  ASSERT_TRUE(dev.CopyPage(PhysAddr{ChannelId{0}, PlaneId{0}, BlockId{0}, PageId{0}},
      PhysAddr{ChannelId{1}, PlaneId{1}, BlockId{5}, PageId{0}}, 0).ok());
  std::vector<std::uint8_t> out(4096);
  ASSERT_TRUE(dev.ReadPage(PhysAddr{ChannelId{1}, PlaneId{1}, BlockId{5}, PageId{0}},
      1 * kSecond, out).ok());
  EXPECT_EQ(out, data);
}

TEST(FlashDeviceTest, EnduranceExhaustionMarksBlockBad) {
  FlashConfig c = TestConfig();
  c.timing.endurance_cycles = 3;
  FlashDevice dev(c);
  ASSERT_TRUE(dev.EraseBlock(ChannelId{0}, PlaneId{0}, BlockId{0}, 0).ok());
  ASSERT_TRUE(dev.EraseBlock(ChannelId{0}, PlaneId{0}, BlockId{0}, 0).ok());
  EXPECT_FALSE(dev.block_status(ChannelId{0}, PlaneId{0}, BlockId{0}).bad);
  ASSERT_TRUE(dev.EraseBlock(ChannelId{0}, PlaneId{0}, BlockId{0}, 0).ok());
  EXPECT_TRUE(dev.block_status(ChannelId{0}, PlaneId{0}, BlockId{0}).bad);
  EXPECT_EQ(dev.ProgramPage(PhysAddr{ChannelId{0}, PlaneId{0}, BlockId{0}, PageId{0}},
      0).code(), ErrorCode::kBlockBad);
  EXPECT_EQ(dev.ReadPage(PhysAddr{ChannelId{0}, PlaneId{0}, BlockId{0}, PageId{0}},
      0).code(), ErrorCode::kBlockBad);
  EXPECT_EQ(dev.EraseBlock(ChannelId{0}, PlaneId{0}, BlockId{0}, 0).code(), ErrorCode::kBlockBad);
  EXPECT_EQ(dev.ComputeWear().bad_blocks, 1u);
}

TEST(FlashDeviceTest, EarlyFailureProbability) {
  FlashConfig c = TestConfig();
  c.early_failure_prob = 1.0;  // Every erase fails the block.
  FlashDevice dev(c);
  ASSERT_TRUE(dev.EraseBlock(ChannelId{0}, PlaneId{0}, BlockId{0}, 0).ok());
  EXPECT_TRUE(dev.block_status(ChannelId{0}, PlaneId{0}, BlockId{0}).bad);
}

TEST(FlashDeviceTest, StatsCountOps) {
  FlashDevice dev(TestConfig());
  ASSERT_TRUE(dev.ProgramPage(PhysAddr{ChannelId{0}, PlaneId{0}, BlockId{0}, PageId{0}}, 0).ok());
  ASSERT_TRUE(dev.ProgramPage(PhysAddr{ChannelId{0}, PlaneId{0}, BlockId{0}, PageId{1}}, 0).ok());
  ASSERT_TRUE(dev.ReadPage(PhysAddr{ChannelId{0}, PlaneId{0}, BlockId{0}, PageId{0}}, 0).ok());
  ASSERT_TRUE(dev.EraseBlock(ChannelId{0}, PlaneId{0}, BlockId{0}, 0).ok());
  const FlashStats& s = dev.stats();
  EXPECT_EQ(s.host_pages_programmed, 2u);
  EXPECT_EQ(s.host_pages_read, 1u);
  EXPECT_EQ(s.blocks_erased, 1u);
  EXPECT_EQ(s.total_pages_programmed(), 2u);
  EXPECT_EQ(s.host_bus_bytes, 3u * 4096);
}

TEST(FlashDeviceTest, WearSummaryStatistics) {
  FlashDevice dev(TestConfig());
  ASSERT_TRUE(dev.EraseBlock(ChannelId{0}, PlaneId{0}, BlockId{0}, 0).ok());
  ASSERT_TRUE(dev.EraseBlock(ChannelId{0}, PlaneId{0}, BlockId{0}, 0).ok());
  ASSERT_TRUE(dev.EraseBlock(ChannelId{1}, PlaneId{1}, BlockId{5}, 0).ok());
  const WearSummary w = dev.ComputeWear();
  EXPECT_EQ(w.min_erase_count, 0u);
  EXPECT_EQ(w.max_erase_count, 2u);
  EXPECT_GT(w.mean_erase_count, 0.0);
  EXPECT_GT(w.stddev_erase_count, 0.0);
}

TEST(FlashDeviceTest, StoreDataOffReadsZeroes) {
  FlashConfig c = TestConfig();
  c.store_data = false;
  FlashDevice dev(c);
  std::vector<std::uint8_t> data(4096, 0x5A);
  ASSERT_TRUE(dev.ProgramPage(PhysAddr{ChannelId{0}, PlaneId{0}, BlockId{0}, PageId{0}},
      0, data).ok());
  std::vector<std::uint8_t> out(4096, 0xFF);
  ASSERT_TRUE(dev.ReadPage(PhysAddr{ChannelId{0}, PlaneId{0}, BlockId{0}, PageId{0}}, 0, out).ok());
  EXPECT_EQ(out, std::vector<std::uint8_t>(4096, 0));
}

TEST(FlashDeviceTest, PlaneBusyUntilAdvances) {
  FlashConfig c = TestConfig();
  FlashDevice dev(c);
  EXPECT_EQ(dev.PlaneBusyUntil(ChannelId{0}, PlaneId{0}), 0u);
  auto w = dev.ProgramPage(PhysAddr{ChannelId{0}, PlaneId{0}, BlockId{0}, PageId{0}}, 100);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(dev.PlaneBusyUntil(ChannelId{0}, PlaneId{0}), w.value());
  EXPECT_EQ(dev.PlaneBusyUntil(ChannelId{1}, PlaneId{0}), 0u);
}

// Property sweep: filling a whole plane sequentially always succeeds and counts correctly,
// for several geometries.
class FillPlaneTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FillPlaneTest, FillAndEraseWholePlane) {
  FlashConfig c = TestConfig();
  c.geometry.pages_per_block = GetParam();
  c.store_data = false;
  FlashDevice dev(c);
  const FlashGeometry& g = dev.geometry();
  SimTime t = 0;
  for (std::uint32_t b = 0; b < g.blocks_per_plane; ++b) {
    for (std::uint32_t p = 0; p < g.pages_per_block; ++p) {
      auto w = dev.ProgramPage(PhysAddr{ChannelId{0}, PlaneId{0}, BlockId{b}, PageId{p}}, t);
      ASSERT_TRUE(w.ok()) << "block " << b << " page " << p;
      t = w.value();
    }
  }
  EXPECT_EQ(dev.stats().host_pages_programmed,
            static_cast<std::uint64_t>(g.blocks_per_plane) * g.pages_per_block);
  for (std::uint32_t b = 0; b < g.blocks_per_plane; ++b) {
    ASSERT_TRUE(dev.EraseBlock(ChannelId{0}, PlaneId{0}, BlockId{b}, t).ok());
  }
  EXPECT_EQ(dev.stats().blocks_erased, g.blocks_per_plane);
}

INSTANTIATE_TEST_SUITE_P(Geometries, FillPlaneTest, ::testing::Values(8, 16, 32, 64));

}  // namespace
}  // namespace blockhead
