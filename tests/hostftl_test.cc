// Tests for the host-side block-on-ZNS layer (dm-zoned role): correctness of the emulated
// block interface under churn, GC behaviour, simple-copy bus savings, scheduler integration.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/hostftl/host_ftl.h"
#include "src/util/rng.h"

namespace blockhead {
namespace {

FlashConfig SmallFlash() {
  FlashConfig c;
  c.geometry = FlashGeometry::Small();
  c.timing = FlashTiming::FastForTests();
  return c;
}

ZnsConfig DeviceConfig() {
  ZnsConfig z;
  z.max_active_zones = 6;
  z.max_open_zones = 6;
  return z;
}

std::vector<std::uint8_t> Pattern(std::uint32_t page_size, std::uint8_t tag) {
  std::vector<std::uint8_t> v(page_size);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<std::uint8_t>(tag * 3 + i);
  }
  return v;
}

TEST(HostFtlTest, ExportsReducedCapacity) {
  ZnsDevice dev(SmallFlash(), DeviceConfig());
  HostFtlBlockDevice ftl(&dev, HostFtlConfig{});
  const std::uint64_t physical = static_cast<std::uint64_t>(dev.num_zones()) *
                                 dev.zone_size_pages();
  EXPECT_LT(ftl.num_blocks(), physical);
  EXPECT_GT(ftl.num_blocks(), physical / 2);
  EXPECT_EQ(ftl.block_size(), 4096u);
}

TEST(HostFtlTest, ReadYourWriteAndOverwrite) {
  ZnsDevice dev(SmallFlash(), DeviceConfig());
  HostFtlBlockDevice ftl(&dev, HostFtlConfig{});
  SimTime t = 0;
  for (std::uint8_t tag = 0; tag < 4; ++tag) {
    auto w = ftl.WriteBlocks(Lba{7}, 1, t, Pattern(4096, tag));
    ASSERT_TRUE(w.ok());
    t = w.value();
  }
  std::vector<std::uint8_t> out(4096);
  ASSERT_TRUE(ftl.ReadBlocks(Lba{7}, 1, t, out).ok());
  EXPECT_EQ(out, Pattern(4096, 3));
}

TEST(HostFtlTest, UnwrittenReadsZeros) {
  ZnsDevice dev(SmallFlash(), DeviceConfig());
  HostFtlBlockDevice ftl(&dev, HostFtlConfig{});
  std::vector<std::uint8_t> out(4096, 0xCC);
  ASSERT_TRUE(ftl.ReadBlocks(Lba{3}, 1, 0, out).ok());
  EXPECT_EQ(out, std::vector<std::uint8_t>(4096, 0));
}

TEST(HostFtlTest, OutOfRangeRejected) {
  ZnsDevice dev(SmallFlash(), DeviceConfig());
  HostFtlBlockDevice ftl(&dev, HostFtlConfig{});
  EXPECT_EQ(ftl.WriteBlocks(Lba{ftl.num_blocks()}, 1, 0).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(ftl.ReadBlocks(Lba{ftl.num_blocks() - 1}, 2, 0).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(ftl.TrimBlocks(Lba{ftl.num_blocks()}, 1, 0).code(), ErrorCode::kOutOfRange);
}

TEST(HostFtlTest, ChurnPreservesAllData) {
  ZnsDevice dev(SmallFlash(), DeviceConfig());
  HostFtlBlockDevice ftl(&dev, HostFtlConfig{});
  Rng rng(1);
  SimTime t = 0;
  const std::uint64_t n = ftl.num_blocks();
  std::map<std::uint64_t, std::uint8_t> truth;
  for (std::uint64_t i = 0; i < 3 * n; ++i) {
    const std::uint64_t lba = rng.NextBelow(n);
    const std::uint8_t tag = static_cast<std::uint8_t>(rng.Next());
    auto w = ftl.WriteBlocks(Lba{lba}, 1, t, Pattern(4096, tag));
    ASSERT_TRUE(w.ok()) << w.status().ToString() << " at op " << i;
    t = w.value();
    truth[lba] = tag;
  }
  ASSERT_GT(ftl.stats().gc_cycles, 0u) << "churn must trigger host GC";
  std::vector<std::uint8_t> out(4096);
  for (const auto& [lba, tag] : truth) {
    ASSERT_TRUE(ftl.ReadBlocks(Lba{lba}, 1, t, out).ok());
    ASSERT_EQ(out, Pattern(4096, tag)) << "lba " << lba;
  }
  EXPECT_TRUE(ftl.CheckConsistency().ok());
  EXPECT_GE(ftl.EndToEndWriteAmplification(), 1.0);
}

TEST(HostFtlTest, AppendModeAlsoPreservesData) {
  ZnsDevice dev(SmallFlash(), DeviceConfig());
  HostFtlConfig cfg;
  cfg.use_append = true;
  HostFtlBlockDevice ftl(&dev, cfg);
  Rng rng(2);
  SimTime t = 0;
  const std::uint64_t n = ftl.num_blocks();
  std::map<std::uint64_t, std::uint8_t> truth;
  for (std::uint64_t i = 0; i < 2 * n; ++i) {
    const std::uint64_t lba = rng.NextBelow(n);
    const std::uint8_t tag = static_cast<std::uint8_t>(rng.Next());
    auto w = ftl.WriteBlocks(Lba{lba}, 1, t, Pattern(4096, tag));
    ASSERT_TRUE(w.ok());
    t = w.value();
    truth[lba] = tag;
  }
  std::vector<std::uint8_t> out(4096);
  for (const auto& [lba, tag] : truth) {
    ASSERT_TRUE(ftl.ReadBlocks(Lba{lba}, 1, t, out).ok());
    ASSERT_EQ(out, Pattern(4096, tag));
  }
  EXPECT_GT(dev.stats().pages_appended, 0u);
  EXPECT_EQ(dev.stats().pages_written, 0u);
}

TEST(HostFtlTest, SimpleCopyGcAvoidsHostBus) {
  FlashConfig fc = SmallFlash();
  fc.store_data = false;

  auto gc_bus_bytes = [&](bool simple_copy) {
    ZnsDevice dev(fc, DeviceConfig());
    HostFtlConfig cfg;
    cfg.use_simple_copy = simple_copy;
    HostFtlBlockDevice ftl(&dev, cfg);
    Rng rng(3);
    SimTime t = 0;
    const std::uint64_t n = ftl.num_blocks();
    for (std::uint64_t i = 0; i < 3 * n; ++i) {
      auto w = ftl.WriteBlocks(Lba{rng.NextBelow(n)}, 1, t);
      EXPECT_TRUE(w.ok());
      t = w.value();
    }
    EXPECT_GT(ftl.stats().gc_pages_copied, 0u);
    return ftl.stats().gc_host_bus_bytes;
  };

  EXPECT_EQ(gc_bus_bytes(true), 0u);
  EXPECT_GT(gc_bus_bytes(false), 0u);
}

TEST(HostFtlTest, TrimFreesSpaceAndReducesGcWork) {
  FlashConfig fc = SmallFlash();
  fc.store_data = false;

  auto copied = [&](bool trim) {
    ZnsDevice dev(fc, DeviceConfig());
    HostFtlBlockDevice ftl(&dev, HostFtlConfig{});
    Rng rng(4);
    SimTime t = 0;
    const std::uint64_t n = ftl.num_blocks();
    for (int round = 0; round < 3; ++round) {
      for (std::uint64_t i = 0; i < n; ++i) {
        auto w = ftl.WriteBlocks(Lba{rng.NextBelow(n)}, 1, t);
        EXPECT_TRUE(w.ok());
        t = w.value();
      }
      if (trim) {
        EXPECT_TRUE(ftl.TrimBlocks(Lba{0}, static_cast<std::uint32_t>(n / 2), t).ok());
      }
    }
    return ftl.stats().gc_pages_copied;
  };

  EXPECT_LT(copied(true), copied(false));
}

TEST(HostFtlTest, PumpRunsBackgroundGc) {
  FlashConfig fc = SmallFlash();
  fc.store_data = false;
  ZnsDevice dev(fc, DeviceConfig());
  HostFtlConfig cfg;
  cfg.sched.policy = GcSchedPolicy::kBackground;
  cfg.sched.low_free_fraction = 0.5;  // Aggressive: reclaim below 50% free.
  HostFtlBlockDevice ftl(&dev, cfg);
  Rng rng(5);
  SimTime t = 0;
  const std::uint64_t n = ftl.num_blocks();
  // Dirty most of the device.
  for (std::uint64_t i = 0; i < 2 * n; ++i) {
    auto w = ftl.WriteBlocks(Lba{rng.NextBelow(n)}, 1, t);
    ASSERT_TRUE(w.ok());
    t = w.value();
  }
  const std::uint64_t free_before = ftl.FreeZones();
  const std::uint32_t ran = ftl.Pump(t, /*reads_pending=*/false, /*max_cycles=*/4);
  EXPECT_GT(ran, 0u);
  EXPECT_GE(ftl.FreeZones(), free_before);
  EXPECT_TRUE(ftl.CheckConsistency().ok());
}

TEST(HostFtlTest, ReadPriorityPumpDefersUnderReads) {
  FlashConfig fc = SmallFlash();
  fc.store_data = false;
  ZnsDevice dev(fc, DeviceConfig());
  HostFtlConfig cfg;
  cfg.sched.policy = GcSchedPolicy::kReadPriority;
  cfg.sched.low_free_fraction = 0.5;
  HostFtlBlockDevice ftl(&dev, cfg);
  Rng rng(6);
  SimTime t = 0;
  const std::uint64_t n = ftl.num_blocks();
  for (std::uint64_t i = 0; i < 2 * n; ++i) {
    auto w = ftl.WriteBlocks(Lba{rng.NextBelow(n)}, 1, t);
    ASSERT_TRUE(w.ok());
    t = w.value();
  }
  EXPECT_EQ(ftl.Pump(t, /*reads_pending=*/true, 4), 0u);
  EXPECT_GT(ftl.Pump(t, /*reads_pending=*/false, 4), 0u);
}

TEST(HostFtlTest, HostMappingBytesAccounted) {
  ZnsDevice dev(SmallFlash(), DeviceConfig());
  HostFtlBlockDevice ftl(&dev, HostFtlConfig{});
  // 4 B forward per logical page + 4 B reverse per device page.
  const std::uint64_t physical = static_cast<std::uint64_t>(dev.num_zones()) *
                                 dev.zone_size_pages();
  EXPECT_EQ(ftl.HostMappingBytes(), ftl.num_blocks() * 4 + physical * 4);
}

TEST(HostFtlTest, MultiPageIo) {
  ZnsDevice dev(SmallFlash(), DeviceConfig());
  HostFtlBlockDevice ftl(&dev, HostFtlConfig{});
  std::vector<std::uint8_t> data(8 * 4096);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7);
  }
  auto w = ftl.WriteBlocks(Lba{100}, 8, 0, data);
  ASSERT_TRUE(w.ok());
  std::vector<std::uint8_t> out(8 * 4096);
  ASSERT_TRUE(ftl.ReadBlocks(Lba{100}, 8, w.value(), out).ok());
  EXPECT_EQ(out, data);
}


TEST(HostFtlTest, IncrementalGcResumesAcrossPumps) {
  FlashConfig fc = SmallFlash();
  fc.store_data = false;
  ZnsDevice dev(fc, DeviceConfig());
  HostFtlConfig cfg;
  cfg.gc_step_pages = 4;
  cfg.sched.low_free_fraction = 0.5;  // Eager (clamped internally to the spare fraction).
  HostFtlBlockDevice ftl(&dev, cfg);
  Rng rng(9);
  SimTime t = 0;
  const std::uint64_t n = ftl.num_blocks();
  for (std::uint64_t i = 0; i < 3 * n; ++i) {
    auto w = ftl.WriteBlocks(Lba{rng.NextBelow(n)}, 1, t);
    ASSERT_TRUE(w.ok());
    t = w.value();
  }
  // Single small pump steps: a whole zone (128 pages here) takes many steps to reclaim, so
  // zones_reclaimed advances far slower than pump calls.
  const std::uint64_t reclaimed_before = ftl.stats().zones_reclaimed;
  std::uint32_t steps = 0;
  for (int i = 0; i < 8; ++i) {
    steps += ftl.Pump(t, false, 1);
  }
  EXPECT_GT(steps, 0u);
  EXPECT_LE(ftl.stats().zones_reclaimed - reclaimed_before, steps);
  EXPECT_TRUE(ftl.CheckConsistency().ok());
}

TEST(HostFtlTest, OpportunisticGcSkipsNearlyLiveZones) {
  FlashConfig fc = SmallFlash();
  fc.store_data = false;
  ZnsDevice dev(fc, DeviceConfig());
  HostFtlConfig cfg;
  cfg.gc_max_live_fraction = 0.5;
  cfg.sched.low_free_fraction = 1.0;  // Clamped; still effectively eager.
  HostFtlBlockDevice ftl(&dev, cfg);
  // Sequential fill only: every full zone is 100% live -> opportunistic GC has no victim.
  SimTime t = 0;
  for (std::uint64_t lba = 0; lba + 8 <= ftl.num_blocks(); lba += 8) {
    auto w = ftl.WriteBlocks(Lba{lba}, 8, t);
    ASSERT_TRUE(w.ok());
    t = w.value();
  }
  EXPECT_EQ(ftl.Pump(t, false, 8), 0u) << "fully-live zones must not be compacted";
  EXPECT_EQ(ftl.stats().gc_pages_copied, 0u);
}

// The emulated block device must keep working across many fills (sustained random write),
// with several op fractions.
class HostFtlOpSweep : public ::testing::TestWithParam<double> {};

TEST_P(HostFtlOpSweep, SustainedChurnStaysConsistent) {
  FlashConfig fc = SmallFlash();
  fc.store_data = false;
  ZnsDevice dev(fc, DeviceConfig());
  HostFtlConfig cfg;
  cfg.op_fraction = GetParam();
  HostFtlBlockDevice ftl(&dev, cfg);
  Rng rng(7);
  SimTime t = 0;
  const std::uint64_t n = ftl.num_blocks();
  for (std::uint64_t i = 0; i < 4 * n; ++i) {
    auto w = ftl.WriteBlocks(Lba{rng.NextBelow(n)}, 1, t);
    ASSERT_TRUE(w.ok()) << w.status().ToString();
    t = w.value();
  }
  EXPECT_TRUE(ftl.CheckConsistency().ok());
  EXPECT_GE(ftl.EndToEndWriteAmplification(), 1.0);
  EXPECT_LT(ftl.EndToEndWriteAmplification(), 50.0);
}

INSTANTIATE_TEST_SUITE_P(OpFractions, HostFtlOpSweep, ::testing::Values(0.1, 0.2, 0.3));

}  // namespace
}  // namespace blockhead
