// Cross-module integration tests: full stacks composed end-to-end.
//
//   * KV store -> zonefile -> ZNS device, with a crash + remount in the middle of churn;
//   * BlockFlashCache stacked on the host-FTL block device (block interface composition);
//   * matched conventional/ZNS devices under the same driver workload;
//   * endurance exhaustion propagating up through the ZNS stack (zone shrink/offline).

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/cache/flash_cache.h"
#include "src/core/matched_pair.h"
#include "src/hostftl/host_ftl.h"
#include "src/kv/block_env.h"
#include "src/kv/kv_store.h"
#include "src/util/rng.h"
#include "src/workload/workload.h"

namespace blockhead {
namespace {

std::string KeyOf(std::uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "k%08llu", static_cast<unsigned long long>(n));
  return buf;
}

std::string ValueOf(std::uint64_t n) {
  std::string v = "value-" + std::to_string(n);
  v.resize(100, 'q');
  return v;
}

TEST(IntegrationTest, KvOnZonefileSurvivesCrashMidChurn) {
  MatchedConfig cfg = MatchedConfig::Small();
  cfg.zns.max_active_zones = 10;
  cfg.zns.max_open_zones = 10;
  ZnsDevice device(cfg.flash, cfg.zns);
  KvConfig kv_cfg;
  kv_cfg.memtable_bytes = 16 * kKiB;
  kv_cfg.level_base_bytes = 256 * kKiB;
  kv_cfg.max_levels = 4;

  std::map<std::string, std::string> truth;
  {
    auto fs = ZoneFileSystem::Format(&device, ZoneFileConfig{}, 0);
    ASSERT_TRUE(fs.ok());
    ZoneEnv env(fs.value().get());
    auto store = KvStore::Open(&env, kv_cfg, 0);
    ASSERT_TRUE(store.ok());
    SimTime t = 0;
    Rng rng(1);
    for (std::uint64_t i = 0; i < 3000; ++i) {
      const std::uint64_t k = rng.NextBelow(600);
      auto p = store.value()->Put(KeyOf(k), ValueOf(i), t);
      ASSERT_TRUE(p.ok()) << p.status().ToString();
      t = std::max(t, p.value());
      truth[KeyOf(k)] = ValueOf(i);
    }
    ASSERT_TRUE(store.value()->Flush(t).ok());
    // Crash: both the store and the filesystem objects are dropped without shutdown.
  }

  auto fs = ZoneFileSystem::Mount(&device, ZoneFileConfig{}, 0);
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();
  ASSERT_TRUE(fs.value()->CheckConsistency().ok());
  ZoneEnv env(fs.value().get());
  auto store = KvStore::Open(&env, kv_cfg, 0);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  for (const auto& [key, value] : truth) {
    auto got = store.value()->Get(key, 0);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got->found) << key;
    ASSERT_EQ(got->value, value) << key;
  }
  // And the recovered store keeps working.
  ASSERT_TRUE(store.value()->Put("post-crash", "alive", 0).ok());
  auto got = store.value()->Get("post-crash", 0);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->found);
}

TEST(IntegrationTest, KvOnBlockOnZnsStack) {
  // Three layers deep: KV -> BlockEnv -> host-FTL block device -> ZNS device. Exercises the
  // BlockDevice abstraction's composability.
  MatchedConfig cfg = MatchedConfig::Small();
  ZnsDevice device(cfg.flash, cfg.zns);
  HostFtlBlockDevice block(&device, HostFtlConfig{});
  BlockEnvConfig env_cfg;
  env_cfg.metadata_region_pages = 128;
  BlockEnv env(&block, env_cfg);
  KvConfig kv_cfg;
  kv_cfg.memtable_bytes = 16 * kKiB;
  kv_cfg.level_base_bytes = 256 * kKiB;
  kv_cfg.max_levels = 4;
  auto store = KvStore::Open(&env, kv_cfg, 0);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  SimTime t = 0;
  Rng rng(2);
  std::map<std::string, std::string> truth;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const std::uint64_t k = rng.NextBelow(500);
    auto p = store.value()->Put(KeyOf(k), ValueOf(i), t);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    t = std::max(t, p.value());
    truth[KeyOf(k)] = ValueOf(i);
    block.Pump(t, false, 1);
  }
  for (const auto& [key, value] : truth) {
    auto got = store.value()->Get(key, t);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got->found) << key;
    ASSERT_EQ(got->value, value);
  }
  EXPECT_TRUE(block.CheckConsistency().ok());
}

TEST(IntegrationTest, CacheOverEmulatedBlockDevice) {
  // The DRAM-coalescing cache runs unchanged over the block-on-ZNS device: the paper's "build
  // other abstractions on top" claim (§2.3).
  MatchedConfig cfg = MatchedConfig::Small();
  cfg.flash.store_data = false;
  ZnsDevice device(cfg.flash, cfg.zns);
  HostFtlBlockDevice block(&device, HostFtlConfig{});
  BlockCacheConfig cache_cfg;
  cache_cfg.segment_pages = 32;
  BlockFlashCache cache(&block, cache_cfg);
  SimTime t = 0;
  Rng rng(3);
  for (std::uint64_t n = 0; n < 20000; ++n) {
    const std::uint64_t key = rng.NextBelow(3000);
    auto got = cache.Get(key, t);
    ASSERT_TRUE(got.ok());
    t = std::max(t, got->completion);
    if (!got->hit) {
      auto put = cache.Put(key, 4096 + static_cast<std::uint32_t>(rng.NextBelow(4096)), t);
      ASSERT_TRUE(put.ok()) << put.status().ToString();
      t = std::max(t, put.value());
    }
    block.Pump(t, false, 1);
  }
  EXPECT_GT(cache.stats().HitRatio(), 0.3);
  EXPECT_TRUE(block.CheckConsistency().ok());
}

TEST(IntegrationTest, MatchedDevicesUnderSameWorkload) {
  // The comparison harness end to end: one workload definition, two devices, coherent result
  // structures. (Shape assertions live in the benches; here we assert the plumbing.)
  MatchedConfig cfg = MatchedConfig::Small();
  cfg.flash.store_data = false;
  cfg.flash.timing = FlashTiming::FastForTests();
  MatchedPair pair = MakeMatchedPair(cfg);
  ASSERT_TRUE(SequentialFill(*pair.conventional, 0.9, 0).ok());

  RandomWorkloadConfig wl;
  wl.lba_space = pair.conventional->num_blocks();
  wl.read_fraction = 0.5;
  wl.seed = 4;
  RandomWorkload gen(wl);
  DriverOptions opts;
  opts.ops = 20000;
  const RunResult conv = RunClosedLoop(*pair.conventional, gen, opts);
  ASSERT_TRUE(conv.status.ok()) << conv.status.ToString();
  EXPECT_EQ(conv.reads + conv.writes, opts.ops);
  EXPECT_GE(pair.conventional->WriteAmplification(), 1.0);

  HostFtlBlockDevice block(pair.zns.get(), HostFtlConfig{});
  ASSERT_TRUE(SequentialFill(block, 0.9, 0).ok());
  RandomWorkloadConfig wl2 = wl;
  wl2.lba_space = block.num_blocks();
  RandomWorkload gen2(wl2);
  DriverOptions opts2;
  opts2.ops = 20000;
  opts2.maintenance_hook = [&block](SimTime now, bool reads) { block.Pump(now, reads, 1); };
  const RunResult zns = RunClosedLoop(block, gen2, opts2);
  ASSERT_TRUE(zns.status.ok()) << zns.status.ToString();
  EXPECT_EQ(zns.reads + zns.writes, opts2.ops);
  EXPECT_TRUE(block.CheckConsistency().ok());
}

TEST(IntegrationTest, EnduranceExhaustionShrinksZnsStack) {
  // Wear the flash out underneath a live zonefile: zones shrink/offline on reset, the
  // filesystem keeps functioning until space truly runs out, and never corrupts.
  FlashConfig flash;
  flash.geometry = FlashGeometry::Small();
  flash.timing = FlashTiming::FastForTests();
  flash.timing.endurance_cycles = 6;  // Very short-lived cells.
  ZnsConfig zns_cfg;
  zns_cfg.max_active_zones = 10;
  zns_cfg.max_open_zones = 10;
  ZnsDevice device(flash, zns_cfg);
  auto fs = ZoneFileSystem::Format(&device, ZoneFileConfig{}, 0);
  ASSERT_TRUE(fs.ok());
  SimTime t = 0;
  const std::vector<std::uint8_t> payload(8 * 4096, 0);
  std::uint64_t created = 0;
  bool wore_out = false;
  for (std::uint64_t i = 0; i < 30000; ++i) {
    const std::string name = "f" + std::to_string(i);
    auto c = fs.value()->Create(name, Lifetime::kShort, t);
    if (!c.ok()) {
      wore_out = true;
      break;
    }
    auto a = fs.value()->Append(name, payload, t);
    if (!a.ok()) {
      wore_out = true;
      break;
    }
    t = a.value();
    if (!fs.value()->Sync(name, t).ok()) {
      wore_out = true;
      break;
    }
    ++created;
    if (i >= 4) {
      auto d = fs.value()->Delete("f" + std::to_string(i - 4), t);
      if (!d.ok()) {
        wore_out = true;
        break;
      }
    }
    fs.value()->Pump(t, false, 1);
  }
  EXPECT_TRUE(wore_out) << "endurance=6 must exhaust the device";
  EXPECT_GT(created, 100u) << "the stack should survive well past the first failures";
  EXPECT_TRUE(fs.value()->CheckConsistency().ok());
  // The device must show real wear damage.
  std::uint32_t offline = 0;
  for (std::uint32_t z = 0; z < device.num_zones(); ++z) {
    if (device.zone(ZoneId{z}).state == ZoneState::kOffline ||
        device.zone(ZoneId{z}).capacity_pages < device.zone_size_pages()) {
      ++offline;
    }
  }
  EXPECT_GT(offline, 0u);
}

}  // namespace
}  // namespace blockhead
