// Tests for the persistent queue (§4.2 append-only workload) and the ZoneFS-style interface.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/queue/persistent_queue.h"
#include "src/util/rng.h"
#include "src/zonefs/zone_fs.h"

namespace blockhead {
namespace {

FlashConfig SmallFlash() {
  FlashConfig c;
  c.geometry = FlashGeometry::Small();
  c.timing = FlashTiming::FastForTests();
  return c;
}

ZnsConfig DeviceConfig() {
  ZnsConfig z;
  z.max_active_zones = 6;
  z.max_open_zones = 6;
  return z;
}

std::vector<std::uint8_t> Record(std::uint64_t n) {
  std::vector<std::uint8_t> v(4096);
  for (std::size_t i = 0; i < 8; ++i) {
    v[i] = static_cast<std::uint8_t>(n >> (8 * i));
  }
  return v;
}

std::uint64_t RecordValue(std::span<const std::uint8_t> v) {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    n |= static_cast<std::uint64_t>(v[i]) << (8 * i);
  }
  return n;
}

// --- PersistentQueue ---

TEST(PersistentQueueTest, FifoOrder) {
  ZnsDevice dev(SmallFlash(), DeviceConfig());
  PersistentQueue q(&dev, QueueConfig{});
  SimTime t = 0;
  for (std::uint64_t i = 0; i < 50; ++i) {
    auto e = q.Enqueue(Record(i), t);
    ASSERT_TRUE(e.ok());
    t = e.value();
  }
  EXPECT_EQ(q.Depth(), 50u);
  std::vector<std::uint8_t> out(4096);
  for (std::uint64_t i = 0; i < 50; ++i) {
    auto d = q.Dequeue(out, t);
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(RecordValue(out), i);
  }
  EXPECT_EQ(q.Depth(), 0u);
  EXPECT_EQ(q.Dequeue(out, t).code(), ErrorCode::kNotFound);
}

TEST(PersistentQueueTest, WrapAroundRecyclesZones) {
  ZnsDevice dev(SmallFlash(), DeviceConfig());
  PersistentQueue q(&dev, QueueConfig{});
  SimTime t = 0;
  std::vector<std::uint8_t> out(4096);
  // Push/pop far more records than the device holds (64 zones x 128 pages = 8192 slots).
  std::uint64_t next_out = 0;
  for (std::uint64_t i = 0; i < 30000; ++i) {
    auto e = q.Enqueue(Record(i), t);
    ASSERT_TRUE(e.ok()) << e.status().ToString() << " at " << i;
    t = e.value();
    if (q.Depth() > 200) {
      auto d = q.Dequeue(out, t);
      ASSERT_TRUE(d.ok());
      ASSERT_EQ(RecordValue(out), next_out++);
    }
  }
  EXPECT_GT(q.stats().zones_recycled, 100u);
  // Structural WA = 1: consumption recycles whole zones, no copies.
  EXPECT_EQ(dev.flash().stats().internal_pages_programmed, 0u);
}

TEST(PersistentQueueTest, FillsToCapacityThenRejects) {
  ZnsDevice dev(SmallFlash(), DeviceConfig());
  PersistentQueue q(&dev, QueueConfig{});
  SimTime t = 0;
  const std::uint64_t slots = q.FreeRecordSlots();
  for (std::uint64_t i = 0; i < slots; ++i) {
    auto e = q.Enqueue({}, t);
    ASSERT_TRUE(e.ok()) << "slot " << i << ": " << e.status().ToString();
    t = e.value();
  }
  EXPECT_EQ(q.Enqueue({}, t).code(), ErrorCode::kDeviceFull);
  // Draining some makes room again.
  std::vector<std::uint8_t> out(4096);
  const std::uint64_t drain = q.Depth();  // Full drain releases all zones.
  for (std::uint64_t i = 0; i < drain; ++i) {
    ASSERT_TRUE(q.Dequeue(out, t).ok());
  }
  EXPECT_TRUE(q.Enqueue({}, t).ok());
}

TEST(PersistentQueueTest, WriteModeMatchesAppendModeSemantics) {
  for (const bool use_append : {true, false}) {
    ZnsDevice dev(SmallFlash(), DeviceConfig());
    QueueConfig cfg;
    cfg.use_append = use_append;
    cfg.record_pages = 2;
    PersistentQueue q(&dev, cfg);
    SimTime t = 0;
    for (std::uint64_t i = 0; i < 300; ++i) {
      auto e = q.Enqueue(std::vector<std::uint8_t>(8192, static_cast<std::uint8_t>(i)), t);
      ASSERT_TRUE(e.ok());
      t = e.value();
    }
    std::vector<std::uint8_t> out(8192);
    for (std::uint64_t i = 0; i < 300; ++i) {
      auto d = q.Dequeue(out, t);
      ASSERT_TRUE(d.ok());
      ASSERT_EQ(out[0], static_cast<std::uint8_t>(i)) << "append=" << use_append;
    }
  }
}

TEST(PersistentQueueTest, AppendModePipelinesConcurrentProducers) {
  // The §4.2 claim through a real data structure: N producers, QD1 each, one shared queue.
  FlashConfig fc = SmallFlash();
  fc.timing = FlashTiming::Tlc();
  ZnsConfig zc = DeviceConfig();
  zc.zone_write_buffer_pages = 0;  // Strict regime to expose serialization.

  auto producer_finish = [&](bool use_append) {
    ZnsDevice dev(fc, zc);
    QueueConfig cfg;
    cfg.use_append = use_append;
    PersistentQueue q(&dev, cfg);
    // 8 producers, each enqueues when its previous record completed; 64 records total.
    std::vector<SimTime> ready(8, 0);
    SimTime finish = 0;
    for (int r = 0; r < 64; ++r) {
      const int p = r % 8;
      auto e = q.Enqueue({}, ready[p]);
      EXPECT_TRUE(e.ok());
      ready[p] = e.value();
      finish = std::max(finish, e.value());
    }
    return finish;
  };

  EXPECT_GT(producer_finish(false), 3 * producer_finish(true))
      << "append-based enqueues should pipeline across the zone's planes";
}


TEST(PersistentQueueTest, SurvivesWornZones) {
  // With tiny endurance, ring zones die as the queue cycles; the queue must route around
  // them (dropping worn zones) and keep FIFO order intact.
  FlashConfig fc = SmallFlash();
  fc.timing.endurance_cycles = 4;
  ZnsDevice dev(fc, DeviceConfig());
  PersistentQueue q(&dev, QueueConfig{});
  SimTime t = 0;
  std::vector<std::uint8_t> out(4096);
  std::uint64_t next_out = 0;
  std::uint64_t enq = 0;
  bool device_dead = false;
  for (std::uint64_t i = 0; i < 120000 && !device_dead; ++i) {
    auto e = q.Enqueue(Record(enq), t);
    if (!e.ok()) {
      device_dead = true;  // Ring fully worn out: acceptable terminal state.
      break;
    }
    ++enq;
    t = e.value();
    if (q.Depth() > 64) {
      auto d = q.Dequeue(out, t);
      ASSERT_TRUE(d.ok());
      ASSERT_EQ(RecordValue(out), next_out++) << "FIFO order must survive zone wear";
    }
  }
  EXPECT_GT(dev.flash().ComputeWear().bad_blocks, 0u) << "test must actually wear the flash";
  EXPECT_GT(enq, 30000u) << "the queue should survive well past the first worn zones";
}

TEST(PersistentQueueTest, RecordLargerThanZoneRejected) {
  ZnsDevice dev(SmallFlash(), DeviceConfig());
  QueueConfig cfg;
  cfg.record_pages = 4096;  // Far larger than a 128-page zone.
  PersistentQueue q(&dev, cfg);
  EXPECT_EQ(q.FreeRecordSlots(), 0u);
  EXPECT_FALSE(q.Enqueue({}, 0).ok());
}

// --- ZoneFs ---

TEST(ZoneFsTest, AppendReadTruncate) {
  ZnsDevice dev(SmallFlash(), DeviceConfig());
  ZoneFs fs(&dev);
  EXPECT_EQ(fs.FileCount(), 64u);
  std::vector<std::uint8_t> data(2 * 4096);
  Rng rng(1);
  for (auto& b : data) {
    b = static_cast<std::uint8_t>(rng.Next());
  }
  ASSERT_TRUE(fs.Append(3, data, 0).ok());
  EXPECT_EQ(fs.Size(3).value(), data.size());
  std::vector<std::uint8_t> out(data.size());
  ASSERT_TRUE(fs.Read(3, 0, out, 0).ok());
  EXPECT_EQ(out, data);
  ASSERT_TRUE(fs.Truncate(3, 0).ok());
  EXPECT_EQ(fs.Size(3).value(), 0u);
  EXPECT_EQ(fs.Read(3, 0, out, 0).code(), ErrorCode::kOutOfRange);
}

TEST(ZoneFsTest, EnforcesZoneRestrictions) {
  ZnsDevice dev(SmallFlash(), DeviceConfig());
  ZoneFs fs(&dev);
  // Unaligned writes rejected (zonefs requires direct, page-granular I/O).
  EXPECT_EQ(fs.Append(0, std::vector<std::uint8_t>(100), 0).code(),
            ErrorCode::kInvalidArgument);
  // Reads beyond the written prefix rejected.
  ASSERT_TRUE(fs.Append(0, std::vector<std::uint8_t>(4096), 0).ok());
  std::vector<std::uint8_t> out(2 * 4096);
  EXPECT_EQ(fs.Read(0, 0, out, 0).code(), ErrorCode::kOutOfRange);
  // File capacity equals zone capacity and fills up exactly.
  const std::uint64_t max = fs.MaxSize(0).value();
  EXPECT_EQ(max, 128u * 4096);
  std::vector<std::uint8_t> rest(max - 4096);
  ASSERT_TRUE(fs.Append(0, rest, 0).ok());
  EXPECT_EQ(fs.Append(0, std::vector<std::uint8_t>(4096), 0).code(), ErrorCode::kZoneFull);
  // Bad file index.
  EXPECT_EQ(fs.Append(999, std::vector<std::uint8_t>(4096), 0).code(), ErrorCode::kNotFound);
  EXPECT_EQ(fs.Size(999).code(), ErrorCode::kNotFound);
}

TEST(ZoneFsTest, SizeIsRecoveredFromDevice) {
  // No metadata of its own: a second ZoneFs over the same device sees the same sizes.
  ZnsDevice dev(SmallFlash(), DeviceConfig());
  {
    ZoneFs fs(&dev);
    ASSERT_TRUE(fs.Append(7, std::vector<std::uint8_t>(3 * 4096), 0).ok());
  }
  ZoneFs fs2(&dev);
  EXPECT_EQ(fs2.Size(7).value(), 3u * 4096);
}

// --- Multi-stream conventional SSD (§2.3) ---

TEST(MultiStreamTest, StreamsSeparateLifetimesAndCutWa) {
  // Hot overwrites interleaved with a slow sequential cold rewrite cycle (journal +
  // checkpoint pattern). With one stream the two lifetimes continuously share erasure blocks,
  // so every GC of a mixed block re-copies cold pages; per-class streams keep them apart.
  FlashConfig fc = SmallFlash();
  fc.store_data = false;

  auto run = [&](std::uint32_t streams) {
    FtlConfig ftl;
    ftl.op_fraction = 0.10;
    ftl.num_streams = streams;
    ConventionalSsd ssd(fc, ftl);
    const std::uint64_t n = ssd.num_blocks();
    const std::uint64_t cold_space = n / 2;  // LBAs [0, cold_space) are the cold class.
    SimTime t = 0;
    Rng rng(3);
    std::uint64_t cold_cursor = 0;
    for (std::uint64_t i = 0; i < 6 * n; ++i) {
      const bool is_cold = i % 8 == 0;  // Cold rewrites ~8x slower than hot overwrites.
      std::uint64_t lba;
      if (is_cold) {
        lba = cold_cursor;
        cold_cursor = (cold_cursor + 1) % cold_space;
      } else {
        lba = cold_space + rng.NextBelow(n - cold_space);
      }
      auto w = ssd.WriteBlocksStream(Lba{lba}, 1, is_cold ? 1 : 0, t);
      EXPECT_TRUE(w.ok());
      t = w.value();
    }
    return ssd.WriteAmplification();
  };

  const double wa_one_stream = run(1);
  const double wa_two_streams = run(2);
  EXPECT_LT(wa_two_streams, wa_one_stream)
      << "per-lifetime streams should reduce GC write amplification";
}

TEST(MultiStreamTest, StreamIdsClampAndPreserveData) {
  FtlConfig ftl;
  ftl.num_streams = 2;
  ConventionalSsd ssd(SmallFlash(), ftl);
  std::vector<std::uint8_t> a(4096, 1);
  std::vector<std::uint8_t> b(4096, 2);
  ASSERT_TRUE(ssd.WriteBlocksStream(Lba{0}, 1, 0, 0, a).ok());
  ASSERT_TRUE(ssd.WriteBlocksStream(Lba{1}, 1, 99, 0, b).ok());  // Clamped to stream 1.
  std::vector<std::uint8_t> out(4096);
  ASSERT_TRUE(ssd.ReadBlocks(Lba{0}, 1, 0, out).ok());
  EXPECT_EQ(out, a);
  ASSERT_TRUE(ssd.ReadBlocks(Lba{1}, 1, 0, out).ok());
  EXPECT_EQ(out, b);
  EXPECT_TRUE(ssd.CheckConsistency().ok());
}

}  // namespace
}  // namespace blockhead
