#!/usr/bin/env python3
"""Unit tests for tools/shard_analyze.py (registered as the shard_analyze ctest).

Each finding class is exercised on a tiny synthetic src/ tree written into a temp dir:
a mutable namespace-scope static, a function-local static, an unannotated mutable member
of a class included from a second subsystem, an allowlist hit, a stale allowlist entry,
an accepted annotation, and the seeded-violation negative test. The last tests assert the
report is byte-identical across reruns and that the real committed tree passes clean.
"""

import contextlib
import io
import json
import os
import pathlib
import sys
import tempfile
import unittest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import shard_analyze  # noqa: E402

THING_H = """\
#ifndef SRC_AAA_THING_H_
#define SRC_AAA_THING_H_

class Thing {
 public:
  void Touch();

 private:
  int plain_ = 0;
  int tagged_ BLOCKHEAD_SHARD_LOCAL(plane) = 0;
  long shared_ BLOCKHEAD_SHARD_SHARED = 0;
  int guarded_ BLOCKHEAD_GUARDED_BY(mu_) = 0;
};

struct PassiveConfig {
  int knob = 0;  // struct = value aggregate: never a finding by itself.
};

#endif  // SRC_AAA_THING_H_
"""

USER_CC = """\
#include "src/aaa/thing.h"

static int g_counter = 0;

int Next() {
  static int call_count = 0;
  return ++call_count;
}

void Use(Thing& t) {
  g_counter++;
  t.shared_ = Next();
  t.Touch();
}
"""

SEED_CC = """\
#include "src/aaa/thing.h"

#ifdef BLOCKHEAD_ANALYZE_SEED_VIOLATION
static int g_sneak = 0;
#endif

void Pump(Thing& t) { t.Touch(); }
"""


class Fixture:
    """A synthetic repo tree plus captured analyzer output."""

    def __init__(self, tmp, files, allowlist=None):
        self.root = tmp
        for rel, text in files.items():
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(text)
        self.allowlist_path = os.path.join(tmp, "allow.txt")
        with open(self.allowlist_path, "w", encoding="utf-8") as f:
            for entry in allowlist or []:
                f.write(entry + "\n")

    def run(self, *extra):
        out_path = os.path.join(self.root, "report.json")
        stdout = io.StringIO()
        with contextlib.redirect_stdout(stdout):
            rc = shard_analyze.main([
                "--root", self.root, "--output", out_path,
                "--allowlist", self.allowlist_path, *extra])
        with open(out_path, "rb") as f:
            raw = f.read()
        return rc, stdout.getvalue(), json.loads(raw), raw


FILES = {"src/aaa/thing.h": THING_H, "src/bbb/user.cc": USER_CC, "src/bbb/seed.cc": SEED_CC}


class FindingClassesTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)

    def test_mutable_statics_and_cross_member_are_found(self):
        fx = Fixture(self._tmp.name, FILES)
        rc, out, report, _ = fx.run()
        self.assertEqual(rc, 1)
        flagged = {(f["finding_class"], f["symbol"]) for f in report["findings"]}
        self.assertEqual(flagged, {
            ("mutable-static", "src/bbb/user.cc::g_counter"),
            ("mutable-static", "src/bbb/user.cc::call_count"),
            ("cross-subsystem-member", "Thing::plain_"),
        })
        self.assertIn("g_counter", out)
        self.assertIn("[mutable-static]", out)
        self.assertIn("[cross-subsystem-member]", out)

    def test_struct_members_are_exempt(self):
        fx = Fixture(self._tmp.name, FILES)
        _, _, report, _ = fx.run()
        self.assertNotIn("PassiveConfig::knob",
                         {f["symbol"] for f in report["findings"]})

    def test_annotations_accepted_and_inventoried(self):
        fx = Fixture(self._tmp.name, FILES)
        _, _, report, _ = fx.run()
        symbols = {s["symbol"]: s for s in report["symbols"]}
        self.assertEqual(symbols["Thing::tagged_"]["domain"], "shard_local")
        self.assertEqual(symbols["Thing::tagged_"]["shard_key"], "plane")
        self.assertEqual(symbols["Thing::shared_"]["domain"], "shard_shared")
        self.assertEqual(symbols["Thing::guarded_"]["domain"], "guarded_by")
        self.assertEqual(symbols["Thing::guarded_"]["shard_key"], "mu_")
        flagged = {f["symbol"] for f in report["findings"]}
        self.assertFalse({"Thing::tagged_", "Thing::shared_", "Thing::guarded_"} & flagged)

    def test_access_matrix_records_cross_subsystem_write(self):
        fx = Fixture(self._tmp.name, FILES)
        _, _, report, _ = fx.run()
        shared = next(s for s in report["symbols"] if s["symbol"] == "Thing::shared_")
        self.assertTrue(shared["cross_subsystem"])
        self.assertIn("w", shared["access"].get("bbb", ""))

    def test_member_of_single_subsystem_class_is_not_flagged(self):
        lonely = {"src/aaa/thing.h": THING_H}  # No second subsystem includes it.
        fx = Fixture(self._tmp.name, lonely)
        _, _, report, _ = fx.run()
        self.assertNotIn("Thing::plain_", {f["symbol"] for f in report["findings"]})

    def test_allowlist_hit_passes_and_is_reported(self):
        fx = Fixture(self._tmp.name, FILES, allowlist=[
            "# grandfathered",
            "mutable-static src/bbb/user.cc::g_counter",
            "mutable-static src/bbb/user.cc::call_count",
            "cross-subsystem-member Thing::plain_",
        ])
        rc, _, report, _ = fx.run()
        self.assertEqual(rc, 0)
        self.assertEqual(report["summary"]["findings"], 0)
        self.assertEqual(report["summary"]["allowlisted"], 3)
        self.assertIn("Thing::plain_", {s["symbol"] for s in report["allowlisted"]})

    def test_stale_allowlist_entry_fails(self):
        fx = Fixture(self._tmp.name, FILES, allowlist=[
            "mutable-static src/bbb/user.cc::g_counter",
            "mutable-static src/bbb/user.cc::call_count",
            "cross-subsystem-member Thing::plain_",
            "mutable-static src/bbb/user.cc::long_gone",
        ])
        rc, out, report, _ = fx.run()
        self.assertEqual(rc, 1)
        self.assertIn("stale allowlist entry", out)
        self.assertIn("long_gone", out)
        self.assertEqual(report["summary"]["stale_allowlist_entries"], 1)

    def test_seeded_violation_caught_and_named(self):
        allow = ["mutable-static src/bbb/user.cc::g_counter",
                 "mutable-static src/bbb/user.cc::call_count",
                 "cross-subsystem-member Thing::plain_"]
        fx = Fixture(self._tmp.name, FILES, allowlist=allow)
        rc, out, _, _ = fx.run()
        self.assertEqual(rc, 0)  # Without seeding the #ifdef body is invisible.
        self.assertNotIn("g_sneak", out)
        rc, out, report, _ = fx.run("--seed-violation")
        self.assertEqual(rc, 1)
        self.assertIn("g_sneak", out)
        self.assertIn("[mutable-static]", out)
        self.assertIn("src/bbb/seed.cc::g_sneak", {f["symbol"] for f in report["findings"]})

    def test_report_is_byte_identical_across_reruns(self):
        fx = Fixture(self._tmp.name, FILES)
        _, _, _, first = fx.run()
        _, _, _, second = fx.run()
        self.assertEqual(first, second)


class CommittedTreeTest(unittest.TestCase):
    def test_repo_tree_is_clean_and_deterministic(self):
        """The committed tree passes with its committed allowlist, byte-identically."""
        with tempfile.TemporaryDirectory() as tmp:
            out_a = os.path.join(tmp, "a.json")
            out_b = os.path.join(tmp, "b.json")
            for out in (out_a, out_b):
                rc = shard_analyze.main(
                    ["--root", str(REPO_ROOT), "--output", out, "--quiet"])
                self.assertEqual(rc, 0)
            with open(out_a, "rb") as fa, open(out_b, "rb") as fb:
                self.assertEqual(fa.read(), fb.read())

    def test_repo_inventory_covers_the_sharding_hazards(self):
        """Every SHARD_SHARED / SIM_GLOBAL symbol carries its subsystem access matrix."""
        with tempfile.TemporaryDirectory() as tmp:
            out = os.path.join(tmp, "r.json")
            shard_analyze.main(["--root", str(REPO_ROOT), "--output", out, "--quiet"])
            with open(out, encoding="utf-8") as f:
                report = json.load(f)
        symbols = report["symbols"]
        hazards = [s for s in symbols if s.get("domain") in ("shard_shared", "sim_global")]
        self.assertGreater(len(hazards), 50)
        for s in hazards:
            self.assertTrue(s["access"], f"{s['symbol']} has an empty access matrix")
        names = {s["symbol"] for s in symbols}
        for expected in ("ConventionalSsd::l2p_", "FlashDevice::plane_busy_",
                         "ZnsDevice::zones_", "MetricRegistry::metrics_"):
            self.assertIn(expected, names)


if __name__ == "__main__":
    unittest.main()
