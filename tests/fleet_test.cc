// Fleet subsystem tests: consistent-hash router properties, admission control, rebalancer
// planning, migration correctness (data integrity + kFleetMigration attribution), provenance
// conservation and the factorized-WA identity across fleet configs, wear-skew reduction with
// rebalancing, and same-seed byte-identical determinism.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/fleet/fleet.h"
#include "src/telemetry/aggregate.h"
#include "src/telemetry/sink.h"
#include "src/util/rng.h"
#include "src/workload/workload.h"

namespace blockhead {
namespace {

// Ledger-internal conservation: the per-cause matrix must sum back to the device totals (no
// write double-counted or dropped whatever scopes were open during fleet operation).
void ExpectLedgerConservation(const WriteProvenance& provenance, const std::string& device) {
  const WriteProvenance::DeviceLedger* ledger = provenance.FindDevice(device);
  ASSERT_NE(ledger, nullptr) << device;
  std::uint64_t programs = 0;
  std::uint64_t erases = 0;
  for (int c = 0; c < kWriteCauseCount; ++c) {
    programs += WriteProvenance::ProgramCount(*ledger, static_cast<WriteCause>(c));
    erases += WriteProvenance::EraseCount(*ledger, static_cast<WriteCause>(c));
  }
  EXPECT_EQ(programs, ledger->total_pages) << device;
  EXPECT_EQ(erases, ledger->total_erases) << device;
  EXPECT_LE(ledger->host_pages, ledger->total_pages) << device;
}

void ExpectFactorizationIdentity(const WriteProvenance& provenance,
                                 const std::vector<std::string>& domains,
                                 const std::string& device) {
  const WriteProvenance::FactorizedWa wa = provenance.Factorize(domains, device);
  ASSERT_EQ(wa.factors.size(), domains.size() + 1);
  for (const auto& f : wa.factors) {
    EXPECT_GT(f.factor, 0.0) << f.from << "->" << f.to;
  }
  EXPECT_NEAR(wa.product, wa.end_to_end, 1e-9) << device;
}

// Checks every device ledger in `fleet`: conservation plus the telescoping WA identity. ZNS
// devices route host writes through the emulation domain ("dev"), conventional devices go
// straight to their flash.
void ExpectFleetProvenanceInvariants(Fleet& fleet) {
  for (std::uint32_t d = 0; d < fleet.num_devices(); ++d) {
    const WriteProvenance& prov = fleet.device_telemetry(d)->provenance;
    const std::string& ledger = fleet.device_ledger_name(d);
    ExpectLedgerConservation(prov, ledger);
    if (fleet.device_kind(d) == DeviceKind::kZns) {
      ExpectFactorizationIdentity(prov, {"dev"}, ledger);
    } else {
      ExpectFactorizationIdentity(prov, {}, ledger);
    }
  }
}

TEST(ShardRouterTest, PreferenceOrderCoversEveryDeviceExactlyOnce) {
  RouterConfig cfg;
  cfg.num_shards = 32;
  cfg.seed = 7;
  ShardRouter router(cfg, 5);
  for (std::uint32_t s = 0; s < cfg.num_shards; ++s) {
    const std::vector<std::uint32_t> order = router.PreferenceOrder(ShardId{s});
    ASSERT_EQ(order.size(), 5u);
    std::set<std::uint32_t> unique(order.begin(), order.end());
    EXPECT_EQ(unique.size(), 5u) << "shard " << s;
    EXPECT_EQ(*unique.begin(), 0u);
    EXPECT_EQ(*unique.rbegin(), 4u);
  }
  // Deterministic: an identical router yields identical orders.
  ShardRouter router2(cfg, 5);
  for (std::uint32_t s = 0; s < cfg.num_shards; ++s) {
    EXPECT_EQ(router.PreferenceOrder(ShardId{s}), router2.PreferenceOrder(ShardId{s}));
  }
}

TEST(ShardRouterTest, PlacementSpreadsAcrossDevices) {
  RouterConfig cfg;
  cfg.num_shards = 64;
  ShardRouter router(cfg, 8);
  std::vector<std::uint32_t> primary_count(8, 0);
  for (std::uint32_t s = 0; s < cfg.num_shards; ++s) {
    ++primary_count[router.PreferenceOrder(ShardId{s})[0]];
  }
  // Consistent hashing with 64 vnodes per device should give every device at least one
  // primary out of 64 shards (a fully starved device would defeat the point).
  for (std::uint32_t d = 0; d < 8; ++d) {
    EXPECT_GT(primary_count[d], 0u) << "device " << d;
  }
}

TEST(ShardRouterTest, ReadReplicaPolicies) {
  const std::vector<std::uint32_t> replicas = {3, 1, 4};

  RouterConfig primary;
  primary.read_policy = ReadReplicaPolicy::kPrimaryOnly;
  ShardRouter p(primary, 5);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(p.PickReadReplica(ShardId{0}, replicas, {}), 0u);
  }

  RouterConfig rr;
  rr.read_policy = ReadReplicaPolicy::kRoundRobin;
  ShardRouter r(rr, 5);
  std::vector<std::uint32_t> picks;
  for (int i = 0; i < 6; ++i) {
    picks.push_back(r.PickReadReplica(ShardId{3}, replicas, {}));
  }
  EXPECT_EQ(picks, (std::vector<std::uint32_t>{0, 1, 2, 0, 1, 2}));

  RouterConfig lp;
  lp.read_policy = ReadReplicaPolicy::kLeastPending;
  ShardRouter l(lp, 5);
  const std::vector<std::uint32_t> pending = {9, 2, 0, 7, 5};  // Indexed by device ordinal.
  // Replica devices are {3, 1, 4} with pending {7, 2, 5}: device 1 (replica index 1) wins.
  EXPECT_EQ(l.PickReadReplica(ShardId{0}, replicas, pending), 1u);
}

TEST(ShardAdmissionTest, QueueDepthCapShedsAndCompletionsFreeSlots) {
  AdmissionConfig cfg;
  cfg.max_queue_depth = 2;
  ShardAdmission adm(cfg, 4);
  EXPECT_EQ(adm.Admit(ShardId{1}, 0, 1, false), AdmissionDecision::kAdmit);
  EXPECT_EQ(adm.Admit(ShardId{1}, 0, 1, false), AdmissionDecision::kAdmit);
  EXPECT_EQ(adm.Admit(ShardId{1}, 0, 1, false), AdmissionDecision::kShedQueue);
  EXPECT_EQ(adm.outstanding(ShardId{1}), 2u);
  // Other shards are unaffected.
  EXPECT_EQ(adm.Admit(ShardId{2}, 0, 1, false), AdmissionDecision::kAdmit);
  adm.RecordCompletion(ShardId{1});
  EXPECT_EQ(adm.Admit(ShardId{1}, 0, 1, false), AdmissionDecision::kAdmit);
  EXPECT_EQ(adm.shed_queue(ShardId{1}), 1u);
  EXPECT_EQ(adm.total_shed_queue(), 1u);
  EXPECT_EQ(adm.total_admitted(), 4u);
}

TEST(ShardAdmissionTest, TokenBucketRateLimitsWritesOnly) {
  AdmissionConfig cfg;
  cfg.tokens_per_second = 1'000'000;  // 1 page per microsecond.
  cfg.burst_pages = 4;
  cfg.max_queue_depth = 0;  // Unlimited depth; isolate the rate limiter.
  ShardAdmission adm(cfg, 1);
  // The burst admits 4 write pages at t=0, then the bucket is dry.
  EXPECT_EQ(adm.Admit(ShardId{0}, 0, 4, true), AdmissionDecision::kAdmit);
  EXPECT_EQ(adm.Admit(ShardId{0}, 0, 1, true), AdmissionDecision::kShedRate);
  // Reads are exempt from the rate limit.
  EXPECT_EQ(adm.Admit(ShardId{0}, 0, 8, false), AdmissionDecision::kAdmit);
  // After 2us the bucket holds 2 tokens again.
  EXPECT_EQ(adm.Admit(ShardId{0}, 2 * kMicrosecond, 2, true), AdmissionDecision::kAdmit);
  EXPECT_EQ(adm.Admit(ShardId{0}, 2 * kMicrosecond, 1, true), AdmissionDecision::kShedRate);
  EXPECT_EQ(adm.total_shed_rate(), 2u);
}

TEST(RebalancerTest, PlansOnlyAboveSkewThresholdAndRespectsPlacement) {
  RebalancerConfig cfg;
  cfg.plan_interval = kMillisecond;
  cfg.skew_threshold = 1.5;
  cfg.min_erases = 10;
  Rebalancer reb(cfg);

  std::vector<DeviceWearSnapshot> devices = {
      {0, 30.0, 300, 0},  // Most worn; a source needs no free slot.
      {1, 5.0, 50, 2},
      {2, 7.0, 70, 1},
  };
  const std::vector<std::uint64_t> hotness = {10, 500, 20};  // Shard 1 is hottest.
  const std::vector<std::vector<std::uint32_t>> shard_devices = {{0, 1}, {0, 2}, {1, 2}};

  EXPECT_GT(Rebalancer::WearSkew(devices), 1.5);
  auto plan = reb.Plan(kMillisecond, devices, hotness, shard_devices);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->shard.value(), 1u);   // Hottest shard on the worn device.
  EXPECT_EQ(plan->source_device, 0u);   // Max wear.
  EXPECT_EQ(plan->target_device, 1u);   // Least worn with a free slot, not already holding.
  EXPECT_EQ(reb.plans_made(), 1u);

  // Below the threshold: no plan.
  std::vector<DeviceWearSnapshot> flat = {
      {0, 10.0, 100, 1}, {1, 9.0, 90, 1}, {2, 10.0, 100, 1}};
  EXPECT_FALSE(reb.Plan(2 * kMillisecond, flat, hotness, shard_devices).has_value());

  // Interval gating: an immediate retry is suppressed even with skewed wear.
  EXPECT_FALSE(reb.Plan(2 * kMillisecond + 1, devices, hotness, shard_devices).has_value());
}

TEST(FleetTest, RejectsOutOfRangeAndShardCrossingRequests) {
  Fleet fleet(FleetConfig::Mixed(2, 0.5, 11));
  const std::uint64_t shard_pages = fleet.config().shard_pages;
  EXPECT_FALSE(fleet.Write(Lba{fleet.num_pages()}, 1, 0).ok());
  EXPECT_FALSE(fleet.Write(Lba{shard_pages - 1}, 2, 0).ok());  // Crosses a shard boundary.
  EXPECT_TRUE(fleet.Write(Lba{shard_pages - 1}, 1, 0).ok());
  EXPECT_TRUE(fleet.Read(Lba{0}, 1, 0).ok());
}

TEST(FleetTest, WritesReplicateAndReadsSpread) {
  FleetConfig cfg = FleetConfig::Mixed(4, 0.5, 3);
  cfg.router.read_policy = ReadReplicaPolicy::kRoundRobin;
  Fleet fleet(cfg);
  ASSERT_EQ(fleet.num_devices(), 4u);

  RandomWorkloadConfig wl;
  wl.lba_space = fleet.num_pages();
  wl.read_fraction = 0.5;
  wl.io_pages = 2;
  wl.seed = 42;
  RandomWorkload gen(wl);
  FleetDriverOptions opts;
  opts.ops = 4000;
  FleetRunResult result = RunFleetClosedLoop(fleet, gen, opts);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_GT(result.reads, 0u);
  EXPECT_GT(result.writes, 0u);

  // Every replica receives every write: summed device host pages >= app pages * replicas
  // (device-side maintenance may add more, never less).
  std::uint64_t device_host_pages = 0;
  for (std::uint32_t d = 0; d < fleet.num_devices(); ++d) {
    const auto* ledger =
        fleet.device_telemetry(d)->provenance.FindDevice(fleet.device_ledger_name(d));
    ASSERT_NE(ledger, nullptr);
    device_host_pages += ledger->host_pages;
  }
  EXPECT_GE(device_host_pages, fleet.stats().app_pages_written * cfg.router.replicas);
  ExpectFleetProvenanceInvariants(fleet);
}

TEST(FleetTest, ForcedMigrationCopiesDataFlipsPlacementAndAttributes) {
  FleetConfig cfg = FleetConfig::Mixed(3, 0.34, 5, /*store_data=*/true);
  cfg.rebalancer.enabled = false;  // This test drives the migration by hand.
  Fleet fleet(cfg);

  // Fill shard 0 with a recognizable pattern through the fleet data path.
  const std::uint64_t shard_pages = cfg.shard_pages;
  const std::uint32_t page = fleet.page_size();
  std::vector<std::uint8_t> data(page);
  SimTime t = 0;
  for (std::uint64_t p = 0; p < shard_pages; ++p) {
    for (std::uint32_t i = 0; i < page; ++i) {
      data[i] = static_cast<std::uint8_t>((p * 131 + i) & 0xff);
    }
    auto w = fleet.Write(Lba{p}, 1, t, data);
    ASSERT_TRUE(w.ok()) << w.status().ToString();
    t = std::max(t, w.value());
  }

  // Pick a target device that holds no replica of shard 0.
  const auto before = fleet.placement(ShardId{0});
  std::set<std::uint32_t> holders;
  for (const auto& pl : before) {
    holders.insert(pl.device_index);
  }
  ASSERT_EQ(holders.size(), 2u);
  std::uint32_t target = 0;
  while (holders.count(target) != 0) {
    ++target;
  }

  ASSERT_TRUE(fleet.StartMigration(ShardId{0}, 0, target).ok());
  EXPECT_TRUE(fleet.MigrationActive());
  // A second concurrent migration is refused (one at a time).
  EXPECT_FALSE(fleet.StartMigration(ShardId{1}, 0, target).ok());

  // A foreground write during the copy is mirrored to the target.
  auto dual = fleet.Write(Lba{3}, 1, t, data);
  ASSERT_TRUE(dual.ok());
  t = std::max(t, dual.value());
  EXPECT_GT(fleet.stats().dual_write_pages, 0u);

  for (int i = 0; i < 64 && fleet.MigrationActive(); ++i) {
    t += kMicrosecond;
    fleet.Step(t);
  }
  ASSERT_FALSE(fleet.MigrationActive());
  EXPECT_EQ(fleet.stats().migrations_completed, 1u);
  EXPECT_EQ(fleet.stats().migration_pages_copied, shard_pages);

  // Placement flipped to the target; the replica set is still two distinct devices.
  const auto after = fleet.placement(ShardId{0});
  std::set<std::uint32_t> new_holders;
  for (const auto& pl : after) {
    new_holders.insert(pl.device_index);
  }
  EXPECT_EQ(new_holders.count(target), 1u);
  EXPECT_EQ(new_holders.size(), 2u);

  // The copy is attributed to kFleetMigration on the target device's ledger.
  const auto* ledger = fleet.device_telemetry(target)->provenance.FindDevice(
      fleet.device_ledger_name(target));
  ASSERT_NE(ledger, nullptr);
  EXPECT_GE(WriteProvenance::ProgramCount(*ledger, WriteCause::kFleetMigration), 1u);

  // Data written before the migration reads back intact through the fleet. Page 3 carries the
  // dual write's payload (the page-3 pattern was overwritten with `data` as left by the last
  // fill iteration), so skip it in the pattern check.
  std::vector<std::uint8_t> got(page);
  for (std::uint64_t p = 0; p < shard_pages; p += 37) {
    if (p == 3) {
      continue;
    }
    auto r = fleet.Read(Lba{p}, 1, t, got);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    for (std::uint32_t i = 0; i < page; i += 509) {
      ASSERT_EQ(got[i], static_cast<std::uint8_t>((p * 131 + i) & 0xff))
          << "page " << p << " offset " << i;
    }
  }
  ExpectFleetProvenanceInvariants(fleet);
}

// Provenance conservation + the factorized-WA identity hold, with kFleetMigration in the
// cause matrix, across two distinct fleet configurations (all-conventional and all-ZNS).
TEST(FleetTest, ProvenanceInvariantsAcrossConfigsWithMigration) {
  for (const double zns_fraction : {0.0, 1.0}) {
    FleetConfig cfg = FleetConfig::Mixed(3, zns_fraction, 17);
    cfg.rebalancer.enabled = false;
    Fleet fleet(cfg);

    RandomWorkloadConfig wl;
    wl.lba_space = fleet.num_pages();
    wl.read_fraction = 0.2;
    wl.io_pages = 4;
    wl.distribution = AddressDistribution::kZipfian;
    wl.seed = 99;
    RandomWorkload gen(wl);
    FleetDriverOptions opts;
    opts.ops = 3000;
    FleetRunResult result = RunFleetClosedLoop(fleet, gen, opts);
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    SimTime t = result.end;

    // Force one migration so kFleetMigration participates in the matrix.
    const auto holders = fleet.placement(ShardId{0});
    std::set<std::uint32_t> held;
    for (const auto& pl : holders) {
      held.insert(pl.device_index);
    }
    std::uint32_t target = 0;
    while (held.count(target) != 0) {
      ++target;
    }
    ASSERT_TRUE(fleet.StartMigration(ShardId{0}, 0, target).ok());
    for (int i = 0; i < 64 && fleet.MigrationActive(); ++i) {
      t += kMicrosecond;
      fleet.Step(t);
    }
    ASSERT_FALSE(fleet.MigrationActive()) << "zns_fraction " << zns_fraction;

    const auto* ledger = fleet.device_telemetry(target)->provenance.FindDevice(
        fleet.device_ledger_name(target));
    ASSERT_NE(ledger, nullptr);
    EXPECT_GT(WriteProvenance::ProgramCount(*ledger, WriteCause::kFleetMigration), 0u);
    ExpectFleetProvenanceInvariants(fleet);
  }
}

TEST(FleetTest, AdmissionRateLimitShedsUnderPressureAndDriverContinues) {
  FleetConfig cfg = FleetConfig::Mixed(2, 0.5, 29);
  cfg.admission.tokens_per_second = 5'000;  // Far below the workload's per-shard write rate.
  cfg.admission.burst_pages = 16;
  Fleet fleet(cfg);

  RandomWorkloadConfig wl;
  wl.lba_space = fleet.num_pages();
  wl.read_fraction = 0.0;
  wl.io_pages = 4;
  wl.seed = 8;
  RandomWorkload gen(wl);
  FleetDriverOptions opts;
  opts.ops = 2000;
  FleetRunResult result = RunFleetClosedLoop(fleet, gen, opts);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_GT(result.sheds, 0u);
  EXPECT_EQ(result.sheds, fleet.admission().total_shed());
  EXPECT_GT(fleet.admission().total_shed_rate(), 0u);
  EXPECT_GT(result.writes, 0u);  // Shedding throttles but does not stop the run.
}

TEST(FleetTest, RebalancingReducesWearSkew) {
  auto run = [](bool rebalance) {
    FleetConfig cfg = FleetConfig::Mixed(4, 0.5, 21);
    cfg.rebalancer.enabled = rebalance;
    cfg.rebalancer.skew_threshold = 1.05;
    cfg.rebalancer.min_erases = 32;
    auto fleet = std::make_unique<Fleet>(cfg);
    RandomWorkloadConfig wl;
    wl.lba_space = fleet->num_pages();
    wl.read_fraction = 0.1;
    wl.io_pages = 4;
    wl.distribution = AddressDistribution::kZipfian;
    wl.zipf_theta = 0.99;  // Strongly skewed (ZipfGenerator requires theta < 1).
    wl.seed = 77;
    RandomWorkload gen(wl);
    FleetDriverOptions opts;
    opts.ops = 24000;
    opts.step_interval = 4;
    FleetRunResult result = RunFleetClosedLoop(*fleet, gen, opts);
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    return std::pair<double, std::uint64_t>(fleet->WearSkew(),
                                            fleet->stats().migrations_completed);
  };

  const auto [skew_off, migrations_off] = run(false);
  const auto [skew_on, migrations_on] = run(true);
  EXPECT_EQ(migrations_off, 0u);
  EXPECT_GE(migrations_on, 1u);
  EXPECT_GT(skew_off, 1.0);
  EXPECT_LT(skew_on, skew_off);
}

TEST(FleetTest, SameSeedRunsAreByteIdentical) {
  auto run = [] {
    FleetConfig cfg = FleetConfig::Mixed(8, 0.5, 13);
    Telemetry tel;
    Fleet fleet(cfg);
    fleet.AttachTelemetry(&tel, "fleet");
    RandomWorkloadConfig wl;
    wl.lba_space = fleet.num_pages();
    wl.read_fraction = 0.3;
    wl.io_pages = 4;
    wl.distribution = AddressDistribution::kZipfian;
    wl.seed = 55;
    RandomWorkload gen(wl);
    FleetDriverOptions opts;
    opts.ops = 5000;
    FleetRunResult result = RunFleetClosedLoop(fleet, gen, opts);
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();

    std::string blob;
    JsonLinesSink().Render("fleet_test", tel.registry.Snapshot(), &blob);
    for (std::uint32_t d = 0; d < fleet.num_devices(); ++d) {
      blob += fleet.device_telemetry(d)->provenance.Dump();
    }
    return blob;
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_FALSE(a.empty());
  EXPECT_NE(a.find("fleet.wear.skew"), std::string::npos);
  EXPECT_EQ(a, b);
}

TEST(FleetTest, PublishedMetricsMergeDeviceHistogramsAndShardTails) {
  FleetConfig cfg = FleetConfig::Mixed(4, 0.25, 31);
  Telemetry tel;
  Fleet fleet(cfg);
  fleet.AttachTelemetry(&tel, "fleet");

  RandomWorkloadConfig wl;
  wl.lba_space = fleet.num_pages();
  wl.read_fraction = 0.5;
  wl.io_pages = 2;
  wl.seed = 6;
  RandomWorkload gen(wl);
  FleetDriverOptions opts;
  opts.ops = 3000;
  FleetRunResult result = RunFleetClosedLoop(fleet, gen, opts);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();

  Histogram probe;
  std::vector<MetricRegistry*> regs;
  for (std::uint32_t d = 0; d < fleet.num_devices(); ++d) {
    regs.push_back(fleet.device_registry(d));
  }
  ASSERT_EQ(MergeHistogramAcross(regs, "host.read.latency_ns", &probe), regs.size());
  const std::uint64_t device_reads = probe.count();

  bool found_merged = false;
  bool found_shard_tail = false;
  bool found_wa = false;
  for (const auto& entry : tel.registry.Snapshot()) {
    if (entry.name == "fleet.read.latency_ns") {
      found_merged = true;
      ASSERT_EQ(entry.kind, MetricKind::kHistogram);
      // The fleet-level merged histogram holds exactly the per-device read samples.
      EXPECT_EQ(entry.histogram->count(), device_reads);
      EXPECT_EQ(entry.histogram->count(), result.reads);
    }
    if (entry.name == "fleet.shard00.p99_ns") {
      found_shard_tail = true;
    }
    if (entry.name == "fleet.end_to_end_wa") {
      found_wa = true;
      EXPECT_GE(entry.gauge, static_cast<double>(cfg.router.replicas));
    }
  }
  EXPECT_TRUE(found_merged);
  EXPECT_TRUE(found_shard_tail);
  EXPECT_TRUE(found_wa);
}

}  // namespace
}  // namespace blockhead
