// Edge cases for src/telemetry/aggregate.h: the cross-registry folds the fleet layer builds
// its merged views from. The interesting boundaries are empty/missing instruments (a device
// that never recorded), the degenerate single-device fleet, and percentile exactness when
// sources occupy disjoint bucket ranges — the case where "merge the p99s" would be wildly
// wrong and bucket-count merging must equal the concatenated-stream histogram.

#include <array>
#include <cstdint>

#include <gtest/gtest.h>

#include "src/telemetry/aggregate.h"
#include "src/telemetry/metric_registry.h"
#include "src/util/histogram.h"

namespace blockhead {
namespace {

TEST(MergeHistogramAcrossTest, EmptyHistogramsContributeNothingButCount) {
  MetricRegistry a;
  MetricRegistry b;
  a.GetHistogram("lat");  // Registered but never recorded.
  b.GetHistogram("lat");
  const std::array<MetricRegistry*, 2> sources = {&a, &b};
  Histogram out;
  EXPECT_EQ(MergeHistogramAcross(sources, "lat", &out), 2u);
  EXPECT_EQ(out.count(), 0u);
  EXPECT_EQ(out.Percentile(0.99), 0u);  // Empty histogram percentiles are 0 by contract.
}

TEST(MergeHistogramAcrossTest, MissingOrMismatchedSourcesAreSkipped) {
  MetricRegistry has;
  MetricRegistry missing;
  MetricRegistry wrong_kind;
  has.GetHistogram("lat")->Record(100);
  wrong_kind.GetCounter("lat")->Add(7);  // Same name, not a histogram.
  const std::array<MetricRegistry*, 3> sources = {&has, &missing, &wrong_kind};
  Histogram out;
  EXPECT_EQ(MergeHistogramAcross(sources, "lat", &out), 1u);
  EXPECT_EQ(out.count(), 1u);
  // The skipped lookups must not have materialized instruments in the sources.
  MetricKind kind;
  EXPECT_FALSE(missing.Lookup("lat", &kind));
  ASSERT_TRUE(wrong_kind.Lookup("lat", &kind));
  EXPECT_EQ(kind, MetricKind::kCounter);
}

TEST(MergeHistogramAcrossTest, SingleDeviceFleetIsIdentity) {
  MetricRegistry only;
  Histogram* h = only.GetHistogram("lat");
  for (std::uint64_t v = 1; v <= 1000; ++v) {
    h->Record(v * 17);
  }
  const std::array<MetricRegistry*, 1> sources = {&only};
  Histogram out;
  EXPECT_EQ(MergeHistogramAcross(sources, "lat", &out), 1u);
  EXPECT_EQ(out.count(), h->count());
  EXPECT_EQ(out.sum(), h->sum());
  EXPECT_EQ(out.min(), h->min());
  EXPECT_EQ(out.max(), h->max());
  for (const double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    EXPECT_EQ(out.Percentile(q), h->Percentile(q)) << "q=" << q;
  }
}

TEST(SumCounterAcrossTest, MissingAndMismatchedContributeZero) {
  MetricRegistry a;
  MetricRegistry b;
  MetricRegistry c;
  a.GetCounter("shed")->Add(3);
  c.GetGauge("shed")->Set(99.0);  // Same name, wrong kind: skipped.
  const std::array<MetricRegistry*, 3> sources = {&a, &b, &c};
  EXPECT_EQ(SumCounterAcross(sources, "shed"), 3u);
}

TEST(RefreshMergedHistogramTest, DisjointBucketRangesMatchConcatenatedStream) {
  // Device A lives in the ~1us range, device B three decades higher: every sample stream
  // lands in buckets the other never touches. The merged histogram must be exactly the
  // histogram of the concatenated streams — same bucket counts, so identical percentiles.
  MetricRegistry a;
  MetricRegistry b;
  MetricRegistry fleet;
  Histogram reference;
  for (std::uint64_t i = 0; i < 300; ++i) {
    const std::uint64_t low = 1000 + i * 3;
    a.GetHistogram("lat")->Record(low);
    reference.Record(low);
  }
  for (std::uint64_t i = 0; i < 100; ++i) {
    const std::uint64_t high = 1'000'000 + i * 999;
    b.GetHistogram("lat")->Record(high);
    reference.Record(high);
  }
  const std::array<MetricRegistry*, 2> sources = {&a, &b};
  EXPECT_EQ(RefreshMergedHistogram(&fleet, "fleet.lat", sources, "lat"), 2u);
  const Histogram* merged = fleet.GetHistogram("fleet.lat");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->count(), 400u);
  EXPECT_EQ(merged->sum(), reference.sum());
  for (const double q : {0.0, 0.5, 0.74, 0.76, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(merged->Percentile(q), reference.Percentile(q)) << "q=" << q;
  }
  // The 75th sample boundary sits exactly at the A/B split: p50 must come from A's range,
  // p90 from B's — a "median of medians" would get both wrong.
  EXPECT_LT(merged->Percentile(0.5), 3000u);
  EXPECT_GT(merged->Percentile(0.9), 900'000u);
}

TEST(RefreshMergedHistogramTest, RepeatedRefreshIsIdempotent) {
  MetricRegistry src;
  MetricRegistry fleet;
  src.GetHistogram("lat")->RecordMany(500, 42);
  const std::array<MetricRegistry*, 1> sources = {&src};
  EXPECT_EQ(RefreshMergedHistogram(&fleet, "fleet.lat", sources, "lat"), 1u);
  EXPECT_EQ(RefreshMergedHistogram(&fleet, "fleet.lat", sources, "lat"), 1u);
  EXPECT_EQ(fleet.GetHistogram("fleet.lat")->count(), 42u);  // Not doubled.
}

}  // namespace
}  // namespace blockhead
