// Unit + property tests for the ZNS device: zone state machine, write-pointer rules, append,
// reset/finish, active/open limits, simple copy, capacity shrink on wear.

#include <gtest/gtest.h>

#include <vector>

#include "src/zns/zns_device.h"

namespace blockhead {
namespace {

FlashConfig SmallFlash() {
  FlashConfig c;
  c.geometry = FlashGeometry::Small();
  c.timing = FlashTiming::FastForTests();
  return c;
}

ZnsConfig DefaultZns() {
  ZnsConfig z;
  z.max_active_zones = 4;
  z.max_open_zones = 4;
  return z;
}

std::vector<std::uint8_t> Pattern(std::uint32_t page_size, std::uint8_t tag) {
  std::vector<std::uint8_t> v(page_size);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<std::uint8_t>(tag ^ (i & 0xFF));
  }
  return v;
}

TEST(ZnsDeviceTest, GeometryDerivedZones) {
  ZnsDevice dev(SmallFlash(), DefaultZns());
  // Small: 64 blocks/plane, 1 block/zone/plane -> 64 zones; 4 planes * 32 pages = 128 pages.
  EXPECT_EQ(dev.num_zones(), 64u);
  EXPECT_EQ(dev.zone_size_pages(), 128u);
  EXPECT_EQ(dev.capacity_bytes(), 64ull * 128 * 4096);
  const ZoneDescriptor d = dev.zone(ZoneId{3});
  EXPECT_EQ(d.state, ZoneState::kEmpty);
  EXPECT_EQ(d.start_lba, Lba{3u * 128});
  EXPECT_EQ(d.capacity_pages, 128u);
  EXPECT_EQ(d.write_pointer, 0u);
}

TEST(ZnsDeviceTest, MultiBlockZones) {
  ZnsConfig z = DefaultZns();
  z.blocks_per_zone_per_plane = 4;
  ZnsDevice dev(SmallFlash(), z);
  EXPECT_EQ(dev.num_zones(), 16u);
  EXPECT_EQ(dev.zone_size_pages(), 512u);
}

TEST(ZnsDeviceTest, WriteAtWritePointerSucceeds) {
  ZnsDevice dev(SmallFlash(), DefaultZns());
  auto w = dev.Write(ZoneId{0}, 0, 4, 0);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(dev.zone(ZoneId{0}).write_pointer, 4u);
  EXPECT_EQ(dev.zone(ZoneId{0}).state, ZoneState::kImplicitOpen);
  EXPECT_EQ(dev.active_zones(), 1u);
}

TEST(ZnsDeviceTest, WriteOffWritePointerFails) {
  ZnsDevice dev(SmallFlash(), DefaultZns());
  EXPECT_EQ(dev.Write(ZoneId{0}, 1, 1, 0).code(), ErrorCode::kWritePointerMismatch);
  ASSERT_TRUE(dev.Write(ZoneId{0}, 0, 2, 0).ok());
  EXPECT_EQ(dev.Write(ZoneId{0}, 0, 1, 0).code(), ErrorCode::kWritePointerMismatch);
  EXPECT_EQ(dev.Write(ZoneId{0}, 3, 1, 0).code(), ErrorCode::kWritePointerMismatch);
  EXPECT_EQ(dev.stats().wp_mismatch_errors, 3u);
}

TEST(ZnsDeviceTest, ReadBackWrittenData) {
  ZnsDevice dev(SmallFlash(), DefaultZns());
  const auto data = Pattern(4096, 0x42);
  auto w = dev.Write(ZoneId{2}, 0, 1, 0, data);
  ASSERT_TRUE(w.ok());
  std::vector<std::uint8_t> out(4096);
  auto r = dev.Read(dev.zone(ZoneId{2}).start_lba, 1, w.value(), out);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
}

TEST(ZnsDeviceTest, ReadBeyondWritePointerReturnsZeros) {
  ZnsDevice dev(SmallFlash(), DefaultZns());
  ASSERT_TRUE(dev.Write(ZoneId{0}, 0, 1, 0).ok());
  std::vector<std::uint8_t> out(4096, 0xFF);
  auto r = dev.Read(Lba{5}, 1, 0, out);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, std::vector<std::uint8_t>(4096, 0));
}

TEST(ZnsDeviceTest, ZoneFillsAndGoesFull) {
  ZnsDevice dev(SmallFlash(), DefaultZns());
  const std::uint64_t cap = dev.zone(ZoneId{0}).capacity_pages;
  SimTime t = 0;
  for (std::uint64_t off = 0; off < cap; off += 8) {
    auto w = dev.Write(ZoneId{0}, off, 8, t);
    ASSERT_TRUE(w.ok());
    t = w.value();
  }
  EXPECT_EQ(dev.zone(ZoneId{0}).state, ZoneState::kFull);
  EXPECT_EQ(dev.active_zones(), 0u) << "full zones do not consume active slots";
  EXPECT_EQ(dev.Write(ZoneId{0}, cap, 1, t).code(), ErrorCode::kZoneFull);
}

TEST(ZnsDeviceTest, WriteCrossingCapacityRejected) {
  ZnsDevice dev(SmallFlash(), DefaultZns());
  const std::uint64_t cap = dev.zone(ZoneId{0}).capacity_pages;
  EXPECT_EQ(dev.Write(ZoneId{0}, 0, static_cast<std::uint32_t>(cap + 1), 0).code(),
            ErrorCode::kZoneFull);
}

TEST(ZnsDeviceTest, SequentialZoneWritesStripeAcrossPlanes) {
  FlashConfig fc = SmallFlash();
  fc.timing = FlashTiming::Tlc();
  ZnsDevice dev(fc, DefaultZns());
  // Writing planes-many pages at once should take ~1 program (plus transfers), not planes.
  auto w = dev.Write(ZoneId{0}, 0, 4, 0);  // Small geometry has 4 planes.
  ASSERT_TRUE(w.ok());
  EXPECT_LT(w.value(), 2 * fc.timing.page_program);
}

TEST(ZnsDeviceTest, ResetReturnsZoneToEmptyAndErases) {
  ZnsDevice dev(SmallFlash(), DefaultZns());
  const auto data = Pattern(4096, 1);
  ASSERT_TRUE(dev.Write(ZoneId{0}, 0, 1, 0, data).ok());
  auto reset = dev.ResetZone(ZoneId{0}, 1 * kSecond);
  ASSERT_TRUE(reset.ok());
  EXPECT_EQ(dev.zone(ZoneId{0}).state, ZoneState::kEmpty);
  EXPECT_EQ(dev.zone(ZoneId{0}).write_pointer, 0u);
  EXPECT_EQ(dev.active_zones(), 0u);
  EXPECT_EQ(dev.stats().zone_resets, 1u);
  // Old data is gone; zone accepts writes from offset 0 again.
  std::vector<std::uint8_t> out(4096, 0xFF);
  ASSERT_TRUE(dev.Read(Lba{0}, 1, reset.value(), out).ok());
  EXPECT_EQ(out, std::vector<std::uint8_t>(4096, 0));
  EXPECT_TRUE(dev.Write(ZoneId{0}, 0, 1, reset.value()).ok());
}

TEST(ZnsDeviceTest, ResetOfEmptyZoneIsCheapNoErase) {
  ZnsDevice dev(SmallFlash(), DefaultZns());
  auto reset = dev.ResetZone(ZoneId{5}, 0);
  ASSERT_TRUE(reset.ok());
  EXPECT_EQ(dev.flash().stats().blocks_erased, 0u);
}

TEST(ZnsDeviceTest, FinishZoneJumpsWritePointer) {
  ZnsDevice dev(SmallFlash(), DefaultZns());
  const auto data = Pattern(4096, 9);
  ASSERT_TRUE(dev.Write(ZoneId{0}, 0, 1, 0, data).ok());
  ASSERT_TRUE(dev.FinishZone(ZoneId{0}, 0).ok());
  EXPECT_EQ(dev.zone(ZoneId{0}).state, ZoneState::kFull);
  EXPECT_EQ(dev.zone(ZoneId{0}).write_pointer, dev.zone(ZoneId{0}).capacity_pages);
  EXPECT_EQ(dev.active_zones(), 0u);
  // Written prefix still readable; unwritten tail reads zeros.
  std::vector<std::uint8_t> out(4096);
  ASSERT_TRUE(dev.Read(Lba{0}, 1, 0, out).ok());
  EXPECT_EQ(out, data);
  std::vector<std::uint8_t> tail(4096, 0xFF);
  ASSERT_TRUE(dev.Read(Lba{10}, 1, 0, tail).ok());
  EXPECT_EQ(tail, std::vector<std::uint8_t>(4096, 0));
  // And writes to a full zone fail.
  EXPECT_EQ(dev.Write(ZoneId{0}, dev.zone(ZoneId{0}).capacity_pages, 1, 0).code(),
            ErrorCode::kZoneFull);
}

TEST(ZnsDeviceTest, ExplicitOpenCloseLifecycle) {
  ZnsDevice dev(SmallFlash(), DefaultZns());
  ASSERT_TRUE(dev.OpenZone(ZoneId{1}, 0).ok());
  EXPECT_EQ(dev.zone(ZoneId{1}).state, ZoneState::kExplicitOpen);
  EXPECT_EQ(dev.open_zones(), 1u);
  EXPECT_EQ(dev.active_zones(), 1u);
  ASSERT_TRUE(dev.CloseZone(ZoneId{1}, 0).ok());
  EXPECT_EQ(dev.zone(ZoneId{1}).state, ZoneState::kClosed);
  EXPECT_EQ(dev.open_zones(), 0u);
  EXPECT_EQ(dev.active_zones(), 1u) << "closed zones stay active";
  EXPECT_EQ(dev.CloseZone(ZoneId{1}, 0).code(), ErrorCode::kZoneNotOpen);
  // Writing to a closed zone implicitly reopens it.
  ASSERT_TRUE(dev.Write(ZoneId{1}, 0, 1, 0).ok());
  EXPECT_EQ(dev.zone(ZoneId{1}).state, ZoneState::kImplicitOpen);
  EXPECT_EQ(dev.open_zones(), 1u);
}

TEST(ZnsDeviceTest, ActiveZoneLimitEnforced) {
  ZnsConfig z = DefaultZns();
  z.max_active_zones = 2;
  z.max_open_zones = 2;
  ZnsDevice dev(SmallFlash(), z);
  ASSERT_TRUE(dev.Write(ZoneId{0}, 0, 1, 0).ok());
  ASSERT_TRUE(dev.Write(ZoneId{1}, 0, 1, 0).ok());
  EXPECT_EQ(dev.Write(ZoneId{2}, 0, 1, 0).code(), ErrorCode::kTooManyActiveZones);
  EXPECT_EQ(dev.stats().active_limit_rejections, 1u);
  // Resetting one frees an active slot.
  ASSERT_TRUE(dev.ResetZone(ZoneId{0}, 0).ok());
  EXPECT_TRUE(dev.Write(ZoneId{2}, 0, 1, 0).ok());
}

TEST(ZnsDeviceTest, ClosedZonesHoldActiveSlotsButNotOpenSlots) {
  ZnsConfig z = DefaultZns();
  z.max_active_zones = 3;
  z.max_open_zones = 1;
  ZnsDevice dev(SmallFlash(), z);
  ASSERT_TRUE(dev.Write(ZoneId{0}, 0, 1, 0).ok());
  EXPECT_EQ(dev.Write(ZoneId{1}, 0, 1, 0).code(), ErrorCode::kTooManyOpenZones);
  ASSERT_TRUE(dev.CloseZone(ZoneId{0}, 0).ok());
  ASSERT_TRUE(dev.Write(ZoneId{1}, 0, 1, 0).ok());
  ASSERT_TRUE(dev.CloseZone(ZoneId{1}, 0).ok());
  ASSERT_TRUE(dev.Write(ZoneId{2}, 0, 1, 0).ok());
  // 2 closed + 1 open = 3 active; a 4th zone cannot activate.
  EXPECT_EQ(dev.Write(ZoneId{3}, 0, 1, 0).code(), ErrorCode::kTooManyActiveZones);
}

TEST(ZnsDeviceTest, AppendAssignsSequentialAddresses) {
  ZnsDevice dev(SmallFlash(), DefaultZns());
  auto a1 = dev.Append(ZoneId{0}, 2, 0);
  ASSERT_TRUE(a1.ok());
  EXPECT_EQ(a1->assigned_lba, dev.zone(ZoneId{0}).start_lba);
  auto a2 = dev.Append(ZoneId{0}, 3, 0);
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a2->assigned_lba, dev.zone(ZoneId{0}).start_lba + 2);
  EXPECT_EQ(dev.zone(ZoneId{0}).write_pointer, 5u);
  EXPECT_EQ(dev.stats().pages_appended, 5u);
}

TEST(ZnsDeviceTest, ConcurrentWritesSerializeButAppendsPipeline) {
  // The §4.2 contention claim: N writers hitting one zone with regular writes serialize on the
  // write pointer; with append they pipeline across planes.
  FlashConfig fc = SmallFlash();
  fc.timing = FlashTiming::Tlc();

  // Writes: each writer must wait for the previous completion to learn the write pointer.
  ZnsDevice wdev(fc, DefaultZns());
  SimTime write_finish = 0;
  std::uint64_t wp = 0;
  for (int writer = 0; writer < 8; ++writer) {
    // All writers "arrive" at t=0, but each can only issue once the previous write completed.
    auto w = wdev.Write(ZoneId{0}, wp, 1, 0);
    ASSERT_TRUE(w.ok());
    wp += 1;
    write_finish = std::max(write_finish, w.value());
  }

  // Appends: all issued at t=0; the device serializes ordering but programs pipeline.
  ZnsDevice adev(fc, DefaultZns());
  SimTime append_finish = 0;
  for (int writer = 0; writer < 8; ++writer) {
    auto a = adev.Append(ZoneId{0}, 1, 0);
    ASSERT_TRUE(a.ok());
    append_finish = std::max(append_finish, a->completion);
  }

  EXPECT_GT(write_finish, 3 * append_finish)
      << "appends from concurrent writers should pipeline across planes";
}

TEST(ZnsDeviceTest, SimpleCopyMovesDataWithoutHostBusTraffic) {
  ZnsDevice dev(SmallFlash(), DefaultZns());
  const auto d0 = Pattern(4096, 1);
  const auto d1 = Pattern(4096, 2);
  ASSERT_TRUE(dev.Write(ZoneId{0}, 0, 1, 0, d0).ok());
  ASSERT_TRUE(dev.Write(ZoneId{0}, 1, 1, 0, d1).ok());
  const std::uint64_t bus_before = dev.flash().stats().host_bus_bytes;

  CopyRange ranges[] = {{dev.zone(ZoneId{0}).start_lba, 1}, {dev.zone(ZoneId{0}).start_lba + 1, 1}};
  auto copy = dev.SimpleCopy(ranges, ZoneId{1}, 0);
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(dev.flash().stats().host_bus_bytes, bus_before) << "simple copy must not use the bus";
  EXPECT_EQ(dev.stats().pages_copied, 2u);
  EXPECT_EQ(dev.zone(ZoneId{1}).write_pointer, 2u);

  std::vector<std::uint8_t> out(4096);
  ASSERT_TRUE(dev.Read(dev.zone(ZoneId{1}).start_lba, 1, copy.value(), out).ok());
  EXPECT_EQ(out, d0);
  ASSERT_TRUE(dev.Read(dev.zone(ZoneId{1}).start_lba + 1, 1, copy.value(), out).ok());
  EXPECT_EQ(out, d1);
}

TEST(ZnsDeviceTest, SimpleCopySourceMustBeWritten) {
  ZnsDevice dev(SmallFlash(), DefaultZns());
  ASSERT_TRUE(dev.Write(ZoneId{0}, 0, 1, 0).ok());
  CopyRange bad[] = {{dev.zone(ZoneId{0}).start_lba + 50, 1}};
  EXPECT_EQ(dev.SimpleCopy(bad, ZoneId{1}, 0).code(), ErrorCode::kOutOfRange);
}

TEST(ZnsDeviceTest, WornZoneShrinksOnReset) {
  FlashConfig fc = SmallFlash();
  fc.timing.endurance_cycles = 2;  // Blocks die after 2 erases.
  ZnsDevice dev(fc, DefaultZns());
  const std::uint64_t cap0 = dev.zone(ZoneId{0}).capacity_pages;
  SimTime t = 0;
  // Fill + reset twice: after the second reset every block hit the endurance limit.
  for (int cycle = 0; cycle < 2; ++cycle) {
    const std::uint64_t cap = dev.zone(ZoneId{0}).capacity_pages;
    ASSERT_GT(cap, 0u);
    for (std::uint64_t off = 0; off < cap; ++off) {
      auto w = dev.Write(ZoneId{0}, off, 1, t);
      ASSERT_TRUE(w.ok());
      t = w.value();
    }
    auto r = dev.ResetZone(ZoneId{0}, t);
    ASSERT_TRUE(r.ok());
    t = r.value();
  }
  EXPECT_LT(dev.zone(ZoneId{0}).capacity_pages, cap0);
  EXPECT_EQ(dev.zone(ZoneId{0}).state, ZoneState::kOffline);
}

TEST(ZnsDeviceTest, OfflineZoneRejectsEverything) {
  FlashConfig fc = SmallFlash();
  fc.timing.endurance_cycles = 1;
  ZnsDevice dev(fc, DefaultZns());
  SimTime t = 0;
  const std::uint64_t cap = dev.zone(ZoneId{0}).capacity_pages;
  for (std::uint64_t off = 0; off < cap; ++off) {
    auto w = dev.Write(ZoneId{0}, off, 1, t);
    ASSERT_TRUE(w.ok());
    t = w.value();
  }
  ASSERT_TRUE(dev.ResetZone(ZoneId{0}, t).ok());
  ASSERT_EQ(dev.zone(ZoneId{0}).state, ZoneState::kOffline);
  EXPECT_EQ(dev.Write(ZoneId{0}, 0, 1, t).code(), ErrorCode::kZoneOffline);
  EXPECT_EQ(dev.Read(dev.zone(ZoneId{0}).start_lba, 1, t).code(), ErrorCode::kZoneOffline);
  EXPECT_EQ(dev.ResetZone(ZoneId{0}, t).code(), ErrorCode::kZoneOffline);
  EXPECT_EQ(dev.FinishZone(ZoneId{0}, t).code(), ErrorCode::kZoneOffline);
}

TEST(ZnsDeviceTest, DramUsageIsZoneGranular) {
  ZnsDevice dev(SmallFlash(), DefaultZns());
  const DramUsage u = dev.ComputeDramUsage();
  EXPECT_EQ(u.mapping_bytes, dev.flash().geometry().total_blocks() * 4);
  EXPECT_EQ(u.gc_metadata_bytes, 0u);
  EXPECT_GT(u.write_buffer_bytes, 0u);
}

TEST(ZnsDeviceTest, ZoneStateNamesAreStable) {
  EXPECT_STREQ(ZoneStateName(ZoneState::kEmpty), "EMPTY");
  EXPECT_STREQ(ZoneStateName(ZoneState::kFull), "FULL");
  EXPECT_STREQ(ZoneStateName(ZoneState::kOffline), "OFFLINE");
}

TEST(ZnsDeviceTest, OutOfRangeZoneAndLba) {
  ZnsDevice dev(SmallFlash(), DefaultZns());
  EXPECT_EQ(dev.Write(ZoneId{999}, 0, 1, 0).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(dev.Append(ZoneId{999}, 1, 0).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(dev.Read(Lba{~0ULL}, 1, 0).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(dev.ResetZone(ZoneId{999}, 0).code(), ErrorCode::kOutOfRange);
  EXPECT_FALSE(dev.ZoneOfLba(Lba{dev.num_zones() * dev.zone_size_pages()}).ok());
}


TEST(ZnsDeviceTest, NarrowStripeZonesPartitionPlanes) {
  // planes_per_zone = 2 on a 4-plane device: twice the zones, half the size, and zones in
  // different plane groups do not contend.
  FlashConfig fc = SmallFlash();
  fc.timing = FlashTiming::Tlc();
  ZnsConfig z = DefaultZns();
  z.planes_per_zone = 2;
  ZnsDevice dev(fc, z);
  EXPECT_EQ(dev.num_zones(), 128u);      // 2 groups x 64 rows.
  EXPECT_EQ(dev.zone_size_pages(), 64u); // 2 planes x 32 pages.

  // Zone 0 (group 0) and zone 1 (group 1) use disjoint planes: concurrent writes overlap.
  auto w0 = dev.Write(ZoneId{0}, 0, 2, 0);
  auto w1 = dev.Write(ZoneId{1}, 0, 2, 0);
  ASSERT_TRUE(w0.ok());
  ASSERT_TRUE(w1.ok());
  // With buffered acks both return quickly; check the underlying plane usage instead: fill
  // zone 0 completely and verify zone 1's planes were never busied beyond their own writes.
  ZnsDevice dev2(fc, z);
  SimTime t = 0;
  for (std::uint64_t off = 0; off < dev2.zone(ZoneId{0}).capacity_pages; ++off) {
    auto w = dev2.Write(ZoneId{0}, off, 1, t);
    ASSERT_TRUE(w.ok());
    t = w.value();
  }
  // A read in zone 1's group sees an idle plane (no queueing behind zone 0 programs).
  auto r = dev2.Read(dev2.zone(ZoneId{1}).start_lba, 1, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r.value(), fc.timing.page_read + fc.timing.channel_xfer + 1000);
}

TEST(ZnsDeviceTest, NarrowStripeCapacityConserved) {
  for (const std::uint32_t width : {1u, 2u, 4u}) {
    ZnsConfig z = DefaultZns();
    z.planes_per_zone = width;
    ZnsDevice dev(SmallFlash(), z);
    EXPECT_EQ(static_cast<std::uint64_t>(dev.num_zones()) * dev.zone_size_pages(),
              dev.flash().geometry().total_pages())
        << "width " << width;
  }
}

TEST(ZnsDeviceTest, BufferedWriteAcksBeforeProgram) {
  FlashConfig fc = SmallFlash();
  fc.timing = FlashTiming::Tlc();
  ZnsConfig z = DefaultZns();
  z.zone_write_buffer_pages = 8;
  ZnsDevice dev(fc, z);
  auto w = dev.Write(ZoneId{0}, 0, 1, 0);
  ASSERT_TRUE(w.ok());
  EXPECT_LT(w.value(), fc.timing.page_program) << "ack should come from the write buffer";
}

TEST(ZnsDeviceTest, WriteBufferBackpressure) {
  FlashConfig fc = SmallFlash();
  fc.timing = FlashTiming::Tlc();
  ZnsConfig z = DefaultZns();
  z.zone_write_buffer_pages = 2;
  z.wp_sync_overhead = 0;
  ZnsDevice dev(fc, z);
  SimTime last_ack = 0;
  for (std::uint64_t off = 0; off < 16; ++off) {
    auto w = dev.Write(ZoneId{0}, off, 1, last_ack);
    ASSERT_TRUE(w.ok());
    last_ack = w.value();
  }
  EXPECT_GT(last_ack, fc.timing.page_program) << "a 2-page buffer must backpressure";
}

TEST(ZnsDeviceTest, UnbufferedWritesCompleteAtProgram) {
  FlashConfig fc = SmallFlash();
  fc.timing = FlashTiming::Tlc();
  ZnsConfig z = DefaultZns();
  z.zone_write_buffer_pages = 0;
  ZnsDevice dev(fc, z);
  auto w = dev.Write(ZoneId{0}, 0, 1, 0);
  ASSERT_TRUE(w.ok());
  EXPECT_GE(w.value(), fc.timing.page_program);
}


TEST(ZnsDeviceTest, SimpleCopyMultiRangeGathersInOrder) {
  FlashConfig fc = SmallFlash();
  ZnsDevice dev(fc, DefaultZns());
  // Write three distinct pages into zone 0.
  for (std::uint8_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        dev.Write(ZoneId{0}, i, 1, 0, Pattern(4096, static_cast<std::uint8_t>(i + 1))).ok());
  }
  // Gather pages 2 and 0 (in that order) into zone 1.
  const Lba base = dev.zone(ZoneId{0}).start_lba;
  CopyRange ranges[] = {{base + 2, 1}, {base + 0, 1}};
  auto copy = dev.SimpleCopy(ranges, ZoneId{1}, 0);
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(dev.zone(ZoneId{1}).write_pointer, 2u);
  std::vector<std::uint8_t> out(4096);
  ASSERT_TRUE(dev.Read(dev.zone(ZoneId{1}).start_lba, 1, kSecond, out).ok());
  EXPECT_EQ(out, Pattern(4096, 3));  // Source page 2 first.
  ASSERT_TRUE(dev.Read(dev.zone(ZoneId{1}).start_lba + 1, 1, kSecond, out).ok());
  EXPECT_EQ(out, Pattern(4096, 1));  // Then source page 0.
}

TEST(ZnsDeviceTest, AppendCarriesPayload) {
  ZnsDevice dev(SmallFlash(), DefaultZns());
  const auto d0 = Pattern(4096, 0x11);
  const auto d1 = Pattern(4096, 0x22);
  std::vector<std::uint8_t> both;
  both.insert(both.end(), d0.begin(), d0.end());
  both.insert(both.end(), d1.begin(), d1.end());
  auto a = dev.Append(ZoneId{3}, 2, 0, both);
  ASSERT_TRUE(a.ok());
  std::vector<std::uint8_t> out(4096);
  ASSERT_TRUE(dev.Read(a->assigned_lba, 1, kSecond, out).ok());
  EXPECT_EQ(out, d0);
  ASSERT_TRUE(dev.Read(a->assigned_lba + 1, 1, kSecond, out).ok());
  EXPECT_EQ(out, d1);
}

TEST(ZnsDeviceTest, SimpleCopyRespectsActiveLimits) {
  ZnsConfig z = DefaultZns();
  z.max_active_zones = 1;
  z.max_open_zones = 1;
  ZnsDevice dev(SmallFlash(), z);
  ASSERT_TRUE(dev.Write(ZoneId{0}, 0, 1, 0).ok());
  // Zone 0 holds the only active slot; a simple copy into zone 1 must be rejected.
  const CopyRange range{dev.zone(ZoneId{0}).start_lba, 1};
  auto copy = dev.SimpleCopy(std::span<const CopyRange>(&range, 1), ZoneId{1}, 0);
  EXPECT_EQ(copy.code(), ErrorCode::kTooManyActiveZones);
}

// State-machine property: a randomized sequence of operations never violates the documented
// zone lifecycle (checked via the device's own accounting).
class ZoneStateMachineTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ZoneStateMachineTest, RandomOpsKeepInvariants) {
  ZnsConfig z = DefaultZns();
  z.max_active_zones = 3;
  z.max_open_zones = 2;
  ZnsDevice dev(SmallFlash(), z);
  Rng rng(GetParam());
  SimTime t = 0;
  for (int step = 0; step < 2000; ++step) {
    const std::uint32_t zone = static_cast<std::uint32_t>(rng.NextBelow(8));
    const ZoneDescriptor d = dev.zone(ZoneId{zone});
    switch (rng.NextBelow(5)) {
      case 0: {
        auto w = dev.Write(ZoneId{zone}, d.write_pointer, 1, t);
        if (w.ok()) {
          t = w.value();
        }
        break;
      }
      case 1: {
        auto a = dev.Append(ZoneId{zone}, 1, t);
        if (a.ok()) {
          t = a->completion;
        }
        break;
      }
      case 2:
        (void)dev.ResetZone(ZoneId{zone}, t);
        break;
      case 3:
        (void)dev.FinishZone(ZoneId{zone}, t);
        break;
      case 4:
        if (rng.NextBool(0.5)) {
          (void)dev.OpenZone(ZoneId{zone}, t);
        } else {
          (void)dev.CloseZone(ZoneId{zone}, t);
        }
        break;
    }
    // Invariants: counts within limits; per-zone wp <= capacity; full zones have wp == cap.
    ASSERT_LE(dev.open_zones(), z.max_open_zones);
    ASSERT_LE(dev.active_zones(), z.max_active_zones);
    std::uint32_t open = 0;
    std::uint32_t active = 0;
    for (std::uint32_t i = 0; i < dev.num_zones(); ++i) {
      const ZoneDescriptor zd = dev.zone(ZoneId{i});
      ASSERT_LE(zd.write_pointer, zd.capacity_pages);
      if (zd.state == ZoneState::kImplicitOpen || zd.state == ZoneState::kExplicitOpen) {
        ++open;
        ++active;
      } else if (zd.state == ZoneState::kClosed) {
        ++active;
      } else if (zd.state == ZoneState::kFull) {
        ASSERT_EQ(zd.write_pointer, zd.capacity_pages);
      }
    }
    ASSERT_EQ(open, dev.open_zones());
    ASSERT_EQ(active, dev.active_zones());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZoneStateMachineTest, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace blockhead
