// Unit tests for the telemetry subsystem: registry semantics (get-or-create, kind collisions,
// snapshot order, providers), tracing spans (nesting, charging, abandonment), deterministic
// sink output, and measured (not estimated) GC-interference attribution at the flash layer.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/ftl/conventional_ssd.h"
#include "src/telemetry/aggregate.h"
#include "src/telemetry/metric_registry.h"
#include "src/telemetry/sink.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/trace.h"
#include "src/util/rng.h"

namespace blockhead {
namespace {

FlashConfig SmallFlash() {
  FlashConfig c;
  c.geometry = FlashGeometry::Small();
  c.timing = FlashTiming::FastForTests();
  return c;
}

TEST(MetricRegistryTest, GetOrCreateReturnsSamePointer) {
  MetricRegistry reg;
  Counter* a = reg.GetCounter("x.count");
  ASSERT_NE(a, nullptr);
  a->Add(3);
  Counter* b = reg.GetCounter("x.count");
  EXPECT_EQ(a, b);
  EXPECT_EQ(b->value(), 3u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricRegistryTest, KindCollisionReturnsNullAndCounts) {
  MetricRegistry reg;
  ASSERT_NE(reg.GetCounter("x"), nullptr);
  EXPECT_EQ(reg.GetGauge("x"), nullptr);
  EXPECT_EQ(reg.GetHistogram("x"), nullptr);
  EXPECT_EQ(reg.collisions(), 2u);
  // The original registration is untouched.
  MetricKind kind;
  ASSERT_TRUE(reg.Lookup("x", &kind));
  EXPECT_EQ(kind, MetricKind::kCounter);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricRegistryTest, SnapshotSortedByName) {
  MetricRegistry reg;
  reg.GetCounter("z.last");
  reg.GetGauge("a.first");
  reg.GetHistogram("m.middle");
  std::vector<MetricRegistry::Entry> snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a.first");
  EXPECT_EQ(snap[1].name, "m.middle");
  EXPECT_EQ(snap[2].name, "z.last");
  EXPECT_EQ(snap[0].kind, MetricKind::kGauge);
  EXPECT_EQ(snap[2].kind, MetricKind::kCounter);
}

TEST(MetricRegistryTest, ProvidersRunBeforeSnapshotAndReplaceById) {
  MetricRegistry reg;
  int calls = 0;
  reg.AddProvider("layer", [&] {
    calls++;
    reg.GetCounter("layer.refreshed")->Set(static_cast<std::uint64_t>(calls));
  });
  // Replacing by the same id must not double-register.
  reg.AddProvider("layer", [&] {
    calls += 10;
    reg.GetCounter("layer.refreshed")->Set(static_cast<std::uint64_t>(calls));
  });
  std::vector<MetricRegistry::Entry> snap = reg.Snapshot();
  EXPECT_EQ(calls, 10);
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].counter, 10u);
}

TEST(TracerTest, SpanRecordsComponentHistograms) {
  MetricRegistry reg;
  Tracer tracer(&reg);
  Tracer::Span span = tracer.Start("op", 1000);
  tracer.Charge({/*queue_ns=*/10, /*gc_ns=*/20, /*flash_ns=*/30, /*flash_ops=*/1});
  span.End(1100);
  const Histogram* total = reg.GetHistogram("span.op.total_ns");
  const Histogram* queue = reg.GetHistogram("span.op.queue_ns");
  const Histogram* gc = reg.GetHistogram("span.op.gc_ns");
  const Histogram* flash = reg.GetHistogram("span.op.flash_ns");
  const Histogram* host = reg.GetHistogram("span.op.host_ns");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->count(), 1u);
  EXPECT_EQ(total->sum(), 100u);
  EXPECT_EQ(queue->sum(), 10u);
  EXPECT_EQ(gc->sum(), 20u);
  EXPECT_EQ(flash->sum(), 30u);
  EXPECT_EQ(host->sum(), 40u);  // 100 - (10 + 20 + 30).
}

TEST(TracerTest, NestedSpansBothSeeCharges) {
  MetricRegistry reg;
  Tracer tracer(&reg);
  Tracer::Span outer = tracer.Start("outer", 0);
  Tracer::Span inner = tracer.Start("inner", 10);
  EXPECT_EQ(tracer.open_spans(), 2u);
  tracer.Charge({0, 0, /*flash_ns=*/50, 1});
  inner.End(100);
  // Only the outer span remains open; further charges reach it alone.
  tracer.Charge({0, 0, /*flash_ns=*/25, 1});
  outer.End(200);
  EXPECT_EQ(reg.GetHistogram("span.inner.flash_ns")->sum(), 50u);
  EXPECT_EQ(reg.GetHistogram("span.outer.flash_ns")->sum(), 75u);
  EXPECT_FALSE(tracer.active());
}

TEST(TracerTest, AbandonedSpanRecordsNothingButIsCounted) {
  MetricRegistry reg;
  Tracer tracer(&reg);
  {
    Tracer::Span span = tracer.Start("lost", 0);
    tracer.Charge({1, 2, 3, 1});
    // Destroyed without End(): the error-path contract.
  }
  EXPECT_FALSE(tracer.active());
  EXPECT_FALSE(reg.Lookup("span.lost.total_ns"));
  // The leak is not silent: each abandonment bumps a per-name counter.
  ASSERT_TRUE(reg.Lookup("span.lost.abandoned"));
  EXPECT_EQ(reg.GetCounter("span.lost.abandoned")->value(), 1u);
  {
    Tracer::Span again = tracer.Start("lost", 10);
  }
  EXPECT_EQ(reg.GetCounter("span.lost.abandoned")->value(), 2u);
  // Ended spans never touch the abandoned counter.
  Tracer::Span ok = tracer.Start("fine", 0);
  ok.End(5);
  EXPECT_FALSE(reg.Lookup("span.fine.abandoned"));
}

TEST(TracerTest, EndIsIdempotentAndMovedFromHandleInert) {
  MetricRegistry reg;
  Tracer tracer(&reg);
  Tracer::Span a = tracer.Start("op", 0);
  Tracer::Span b = std::move(a);
  EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move): moved-from must be inert.
  a.End(50);                 // No-op.
  b.End(100);
  b.End(999);  // Idempotent: second End ignored.
  const Histogram* total = reg.GetHistogram("span.op.total_ns");
  EXPECT_EQ(total->count(), 1u);
  EXPECT_EQ(total->sum(), 100u);
}

// GC interference must be *measured* from plane occupancy, not estimated: a host read queued
// behind a block erase on the same plane attributes that wait to gc_ns.
TEST(FlashTelemetryTest, HostReadBehindEraseChargesGcTime) {
  Telemetry tel;
  FlashDevice flash(SmallFlash());
  flash.AttachTelemetry(&tel, "flash");

  PhysAddr addr{ChannelId{0}, PlaneId{0}, BlockId{0}, PageId{0}};
  ASSERT_TRUE(flash.ProgramPage(addr, 0).ok());
  const SimTime t0 = flash.PlaneBusyUntil(ChannelId{0}, PlaneId{0});

  // Start maintenance (an erase of another block on the same plane), then issue a host read
  // while the plane is still busy erasing.
  ASSERT_TRUE(flash.EraseBlock(ChannelId{0}, PlaneId{0}, BlockId{1}, t0).ok());
  Tracer::Span span = tel.tracer.Start("probe", t0);
  Result<SimTime> read = flash.ReadPage(addr, t0);
  ASSERT_TRUE(read.ok());
  span.End(read.value());

  const Histogram* gc = tel.registry.GetHistogram("span.probe.gc_ns");
  ASSERT_NE(gc, nullptr);
  EXPECT_GT(gc->sum(), 0u);
  // The wait was maintenance, not foreground contention.
  EXPECT_EQ(tel.registry.GetHistogram("span.probe.queue_ns")->sum(), 0u);
  EXPECT_GT(tel.registry.GetHistogram("span.probe.flash_ns")->sum(), 0u);
}

// A host read queued behind an earlier *host* program charges queue_ns, not gc_ns.
TEST(FlashTelemetryTest, HostReadBehindHostProgramChargesQueueTime) {
  Telemetry tel;
  FlashDevice flash(SmallFlash());
  flash.AttachTelemetry(&tel, "flash");

  PhysAddr addr{ChannelId{0}, PlaneId{0}, BlockId{0}, PageId{0}};
  ASSERT_TRUE(flash.ProgramPage(addr, 0).ok());
  PhysAddr next{ChannelId{0}, PlaneId{0}, BlockId{0}, PageId{1}};
  ASSERT_TRUE(flash.ProgramPage(next, 0).ok());  // Plane busy with host work.

  Tracer::Span span = tel.tracer.Start("probe", 0);
  Result<SimTime> read = flash.ReadPage(addr, 0);
  ASSERT_TRUE(read.ok());
  span.End(read.value());

  EXPECT_GT(tel.registry.GetHistogram("span.probe.queue_ns")->sum(), 0u);
  EXPECT_EQ(tel.registry.GetHistogram("span.probe.gc_ns")->sum(), 0u);
}

TEST(FlashTelemetryTest, ProviderExportsStatsAndWear) {
  Telemetry tel;
  FlashDevice flash(SmallFlash());
  flash.AttachTelemetry(&tel, "flash");
  PhysAddr addr{ChannelId{0}, PlaneId{0}, BlockId{0}, PageId{0}};
  ASSERT_TRUE(flash.ProgramPage(addr, 0).ok());
  ASSERT_TRUE(flash.ReadPage(addr, 0).ok());
  ASSERT_TRUE(flash.EraseBlock(ChannelId{0}, PlaneId{0}, BlockId{0}, 0).ok());

  (void)tel.registry.Snapshot();  // Runs the provider.
  EXPECT_EQ(tel.registry.GetCounter("flash.host_pages_programmed")->value(), 1u);
  EXPECT_EQ(tel.registry.GetCounter("flash.host_pages_read")->value(), 1u);
  EXPECT_EQ(tel.registry.GetCounter("flash.blocks_erased")->value(), 1u);
  EXPECT_GT(tel.registry.GetCounter("flash.host_bus_bytes")->value(), 0u);
  EXPECT_EQ(tel.registry.GetGauge("flash.wear.max_erase_count")->value(), 1.0);
  EXPECT_EQ(tel.registry.GetHistogram("flash.read.latency_ns")->count(), 1u);
  EXPECT_EQ(tel.registry.GetHistogram("flash.program.latency_ns")->count(), 1u);
}

// Runs a fixed write/read workload against a fresh ConventionalSsd and returns the rendered
// JSON-lines dump.
std::string RunSsdAndDump(const char* bench_name) {
  Telemetry tel;
  ConventionalSsd ssd(SmallFlash(), FtlConfig{});
  ssd.AttachTelemetry(&tel, "conv");
  SimTime t = 0;
  for (std::uint64_t i = 0; i < 400; ++i) {
    Result<SimTime> done = ssd.WriteBlocks(Lba{(i * 37) % ssd.num_blocks()}, 1, t);
    EXPECT_TRUE(done.ok());
    t = done.value();
  }
  for (std::uint64_t i = 0; i < 100; ++i) {
    Result<SimTime> done = ssd.ReadBlocks(Lba{(i * 53) % ssd.num_blocks()}, 1, t);
    EXPECT_TRUE(done.ok());
    t = done.value();
  }
  std::string out;
  JsonLinesSink().Render(bench_name, tel.registry.Snapshot(), &out);
  return out;
}

TEST(SinkTest, SameSeedRunsSerializeByteIdentically) {
  const std::string first = RunSsdAndDump("determinism");
  const std::string second = RunSsdAndDump("determinism");
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(SinkTest, JsonLinesShapeAndEscaping) {
  MetricRegistry reg;
  reg.GetCounter("a.count")->Set(7);
  reg.GetGauge("b.gauge")->Set(2.5);
  reg.GetHistogram("c.latency_ns")->Record(100);
  std::string out;
  JsonLinesSink().Render("bench \"x\"", reg.Snapshot(), &out);
  // One line per metric, each tagged with the (escaped) bench name.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_NE(out.find("\"bench\":\"bench \\\"x\\\"\""), std::string::npos);
  EXPECT_NE(out.find("\"metric\":\"a.count\""), std::string::npos);
  EXPECT_NE(out.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(out.find("\"value\":7"), std::string::npos);
  EXPECT_NE(out.find("\"kind\":\"histogram\""), std::string::npos);
  EXPECT_NE(out.find("\"count\":1"), std::string::npos);
}

TEST(SinkTest, CsvHasHeaderAndOneRowPerMetric) {
  MetricRegistry reg;
  reg.GetCounter("a")->Set(1);
  reg.GetHistogram("h")->Record(5);
  std::string out;
  CsvSink().Render("b", reg.Snapshot(), &out);
  EXPECT_EQ(out.rfind("bench,metric,kind,value,", 0), 0u);  // Header first.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);   // Header + 2 rows.
}

TEST(SinkTest, JsonEscapeHandlesQuotesBackslashesAndControlChars) {
  // Regression: caller-supplied keys (tenant names, track labels, metric names assembled
  // from them) must never corrupt a JSON stream. Quotes and backslashes get backslash
  // escapes; control characters render as \u00XX; plain text passes through.
  EXPECT_EQ(JsonEscape("plain.metric"), "plain.metric");
  EXPECT_EQ(JsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonEscape(std::string_view("nul\0byte", 8)), "nul\\u0000byte");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab"), "line\\u000abreak\\u0009tab");
  EXPECT_EQ(JsonEscape("\x1f"), "\\u001f");
}

TEST(SinkTest, HostileMetricNamesStayValidInJsonAndCsv) {
  MetricRegistry reg;
  reg.GetCounter("tenant \"a\\b\".count")->Set(1);
  reg.GetGauge("line\nbreak.gauge")->Set(2.0);
  std::string json;
  JsonLinesSink().Render("bench\\\"x", reg.Snapshot(), &json);
  // Every raw quote in the output must be a structural quote: unescaped quotes from the
  // metric name would break the line's key/value framing.
  EXPECT_NE(json.find("\"metric\":\"tenant \\\"a\\\\b\\\".count\""), std::string::npos);
  EXPECT_NE(json.find("\"metric\":\"line\\u000abreak.gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"bench\":\"bench\\\\\\\"x\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '\n'), 2)
      << "control char leaked into the stream unescaped (extra line break)";

  std::string csv;
  CsvSink().Render("b,1", reg.Snapshot(), &csv);
  // RFC 4180: fields with commas/quotes/newlines are quoted with doubled quotes. The comma
  // in the bench name must not add a column.
  EXPECT_NE(csv.find("\"b,1\""), std::string::npos);
  EXPECT_NE(csv.find("\"tenant \"\"a\\b\"\".count\""), std::string::npos);
}


TEST(AggregateTest, MergedHistogramPercentilesMatchConcatenatedStream) {
  // Three registries record disjoint slices of one sample stream; merging their histograms
  // must reproduce the percentiles of the full stream exactly (bucket counts add — this is
  // what "merge the p99 gauges" can never do).
  MetricRegistry a;
  MetricRegistry b;
  MetricRegistry c;
  Histogram reference;
  Rng rng(99);
  std::vector<MetricRegistry*> regs = {&a, &b, &c};
  std::vector<Histogram*> hists = {a.GetHistogram("lat_ns"), b.GetHistogram("lat_ns"),
                                   c.GetHistogram("lat_ns")};
  for (int i = 0; i < 30000; ++i) {
    const std::uint64_t sample = 50 + rng.NextBelow(1u << (5 + i % 14));
    hists[static_cast<std::size_t>(i) % 3]->Record(sample);
    reference.Record(sample);
  }

  Histogram merged;
  ASSERT_EQ(MergeHistogramAcross(regs, "lat_ns", &merged), 3u);
  EXPECT_EQ(merged.count(), reference.count());
  EXPECT_EQ(merged.max(), reference.max());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(merged.Percentile(q), reference.Percentile(q)) << "q=" << q;
  }

  // A registry lacking the name (or holding it as another kind) is skipped, not counted.
  MetricRegistry d;
  d.GetCounter("lat_ns");
  std::vector<MetricRegistry*> with_bad = {&a, &d};
  Histogram partial;
  EXPECT_EQ(MergeHistogramAcross(with_bad, "lat_ns", &partial), 1u);
  EXPECT_EQ(partial.count(), hists[0]->count());
  // Sources were never mutated or grown by the merge.
  EXPECT_EQ(a.size(), 1u);

  // RefreshMergedHistogram is idempotent across repeated snapshots.
  MetricRegistry target;
  ASSERT_EQ(RefreshMergedHistogram(&target, "fleet.lat_ns", regs, "lat_ns"), 3u);
  ASSERT_EQ(RefreshMergedHistogram(&target, "fleet.lat_ns", regs, "lat_ns"), 3u);
  EXPECT_EQ(target.GetHistogram("fleet.lat_ns")->count(), reference.count());

  // SumCounterAcross folds counters the same way.
  a.GetCounter("sheds")->Add(3);
  c.GetCounter("sheds")->Add(9);
  EXPECT_EQ(SumCounterAcross(regs, "sheds"), 12u);
}

}  // namespace
}  // namespace blockhead
