// Tests for zone budget managers and the multi-tenant burst simulation.

#include <gtest/gtest.h>

#include "src/alloc/zone_budget.h"

namespace blockhead {
namespace {

FlashConfig SimFlash() {
  FlashConfig c;
  c.geometry = FlashGeometry::Small();
  c.timing = FlashTiming::FastForTests();
  c.store_data = false;
  return c;
}

TEST(StaticPartitionTest, EnforcesPerTenantCap) {
  StaticPartitionBudget budget(8, 4);  // 2 slots each.
  EXPECT_TRUE(budget.Acquire(0).ok());
  EXPECT_TRUE(budget.Acquire(0).ok());
  EXPECT_EQ(budget.Acquire(0).code(), ErrorCode::kBusy);
  EXPECT_EQ(budget.Held(0), 2u);
  // Another tenant's idle slots are NOT lendable.
  EXPECT_EQ(budget.Held(1), 0u);
  EXPECT_EQ(budget.Acquire(0).code(), ErrorCode::kBusy);
  budget.Release(0);
  EXPECT_TRUE(budget.Acquire(0).ok());
}

TEST(DemandBudgetTest, SharesIdleSlots) {
  DemandBudget budget(8, 4, /*guaranteed_min=*/1);
  // One tenant can burst past its fair share while others are idle...
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(budget.Acquire(0).ok()) << i;
  }
  // ...but must leave each other tenant its guaranteed slot (3 tenants x 1).
  EXPECT_EQ(budget.Acquire(0).code(), ErrorCode::kBusy);
  EXPECT_EQ(budget.Held(0), 5u);
  // Guaranteed slots remain reachable for everyone else.
  EXPECT_TRUE(budget.Acquire(1).ok());
  EXPECT_TRUE(budget.Acquire(2).ok());
  EXPECT_TRUE(budget.Acquire(3).ok());
  // Pool now exhausted.
  EXPECT_EQ(budget.Acquire(1).code(), ErrorCode::kBusy);
  budget.Release(0);
  EXPECT_TRUE(budget.Acquire(1).ok());
}

TEST(DemandBudgetTest, GuaranteeAlwaysReachable) {
  DemandBudget budget(4, 4, 1);
  EXPECT_TRUE(budget.Acquire(0).ok());
  // Tenant 0 cannot take a second slot: it would strand another tenant below its guarantee.
  EXPECT_EQ(budget.Acquire(0).code(), ErrorCode::kBusy);
  EXPECT_TRUE(budget.Acquire(1).ok());
  EXPECT_TRUE(budget.Acquire(2).ok());
  EXPECT_TRUE(budget.Acquire(3).ok());
}

TEST(MultiTenantSimTest, RunsAndWrites) {
  ZnsConfig zcfg;
  zcfg.max_active_zones = 8;
  zcfg.max_open_zones = 8;
  ZnsDevice dev(SimFlash(), zcfg);
  DemandBudget budget(8, 4, 1);
  std::vector<TenantConfig> tenants(4);
  for (std::uint32_t t = 0; t < 4; ++t) {
    tenants[t].seed = t + 1;
    tenants[t].desired_zones = 4;
  }
  const MultiTenantResult result = RunMultiTenantSim(dev, budget, tenants, 100 * kMillisecond);
  EXPECT_GT(result.total_pages, 0u);
  EXPECT_EQ(result.tenants.size(), 4u);
  EXPECT_GT(result.slot_utilization, 0.0);
  EXPECT_LE(result.slot_utilization, 1.0 + 1e-9);
}

TEST(MultiTenantSimTest, DemandBeatsStaticForBurstyTenants) {
  // Four tenants bursting mostly at different times: demand-based budgets should move idle
  // slots to the burster and finish more work.
  ZnsConfig zcfg;
  zcfg.max_active_zones = 8;
  zcfg.max_open_zones = 8;

  std::vector<TenantConfig> tenants(4);
  for (std::uint32_t t = 0; t < 4; ++t) {
    tenants[t].seed = t + 1;
    tenants[t].on_duration = 2 * kMillisecond;
    tenants[t].off_duration = 14 * kMillisecond;
    tenants[t].desired_zones = 6;  // Bursts want more than a static share (2).
  }

  ZnsDevice dev_static(SimFlash(), zcfg);
  StaticPartitionBudget static_budget(8, 4);
  const MultiTenantResult static_result =
      RunMultiTenantSim(dev_static, static_budget, tenants, 200 * kMillisecond);

  ZnsDevice dev_demand(SimFlash(), zcfg);
  DemandBudget demand_budget(8, 4, 1);
  const MultiTenantResult demand_result =
      RunMultiTenantSim(dev_demand, demand_budget, tenants, 200 * kMillisecond);

  EXPECT_GT(demand_result.total_pages, static_result.total_pages)
      << "demand-based budgeting should multiplex the scarce active-zone resource";
}

}  // namespace
}  // namespace blockhead
