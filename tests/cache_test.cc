// Tests for the flash caches: hit/miss accounting, eviction correctness, DRAM staging
// accounting, and the structural write-amplification differences between the three designs.

#include <gtest/gtest.h>

#include "src/cache/flash_cache.h"
#include "src/ftl/conventional_ssd.h"
#include "src/util/rng.h"

namespace blockhead {
namespace {

FlashConfig SmallFlash() {
  FlashConfig c;
  c.geometry = FlashGeometry::Small();
  c.timing = FlashTiming::FastForTests();
  c.store_data = false;
  return c;
}

ZnsConfig DeviceConfig() {
  ZnsConfig z;
  z.max_active_zones = 6;
  z.max_open_zones = 6;
  return z;
}

TEST(BlockCacheTest, PutThenGetHits) {
  ConventionalSsd ssd(SmallFlash(), FtlConfig{});
  BlockFlashCache cache(&ssd, BlockCacheConfig{});
  ASSERT_TRUE(cache.Put(1, 10000, 0).ok());
  auto got = cache.Get(1, 0);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->hit);
  EXPECT_EQ(got->size_bytes, 10000u);
  auto miss = cache.Get(2, 0);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->hit);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(BlockCacheTest, CoalescingStagesInDram) {
  ConventionalSsd ssd(SmallFlash(), FtlConfig{});
  BlockCacheConfig cfg;
  cfg.segment_pages = 32;
  BlockFlashCache cache(&ssd, cfg);
  EXPECT_EQ(cache.StagingDramBytes(), 32u * 4096);
  // A small object sits in the buffer: no flash writes yet.
  ASSERT_TRUE(cache.Put(1, 4096, 0).ok());
  EXPECT_EQ(ssd.ftl_stats().host_pages_written, 0u);
  // Filling the buffer flushes one big sequential write.
  for (std::uint64_t k = 2; k < 40; ++k) {
    ASSERT_TRUE(cache.Put(k, 4096, 0).ok());
  }
  EXPECT_GT(ssd.ftl_stats().host_pages_written, 0u);
  EXPECT_GT(cache.stats().segments_recycled, 0u);
  // Objects remain retrievable whether staged or flushed.
  for (std::uint64_t k = 1; k < 40; ++k) {
    auto got = cache.Get(k, 0);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got->hit) << k;
  }
}

TEST(BlockCacheTest, FifoEvictionDropsOldestSegment) {
  ConventionalSsd ssd(SmallFlash(), FtlConfig{});
  BlockCacheConfig cfg;
  cfg.segment_pages = 16;
  BlockFlashCache cache(&ssd, cfg);
  const std::uint64_t capacity_objects = ssd.num_blocks();  // 1 page each.
  // Insert 1.5x capacity of 1-page objects: the oldest must be evicted.
  SimTime t = 0;
  const std::uint64_t total = capacity_objects + capacity_objects / 2;
  for (std::uint64_t k = 0; k < total; ++k) {
    auto p = cache.Put(k, 4096, t);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    t = p.value();
  }
  EXPECT_GT(cache.stats().evicted_objects, 0u);
  auto oldest = cache.Get(0, t);
  ASSERT_TRUE(oldest.ok());
  EXPECT_FALSE(oldest->hit);
  auto newest = cache.Get(total - 1, t);
  ASSERT_TRUE(newest.ok());
  EXPECT_TRUE(newest->hit);
}

TEST(BlockCacheTest, NaiveModeWritesImmediatelyAndEvicts) {
  ConventionalSsd ssd(SmallFlash(), FtlConfig{});
  BlockCacheConfig cfg;
  cfg.coalesce_writes = false;
  BlockFlashCache cache(&ssd, cfg);
  EXPECT_EQ(cache.StagingDramBytes(), 0u);
  ASSERT_TRUE(cache.Put(1, 8192, 0).ok());
  EXPECT_EQ(ssd.ftl_stats().host_pages_written, 2u);
  // Fill past capacity.
  SimTime t = 0;
  for (std::uint64_t k = 2; k < ssd.num_blocks(); ++k) {
    auto p = cache.Put(k, 4096, t);
    ASSERT_TRUE(p.ok());
    t = p.value();
  }
  EXPECT_GT(cache.stats().evicted_objects, 0u);
  auto newest = cache.Get(ssd.num_blocks() - 1, t);
  ASSERT_TRUE(newest.ok());
  EXPECT_TRUE(newest->hit);
}

TEST(BlockCacheTest, OverwriteKeepsSingleCopy) {
  ConventionalSsd ssd(SmallFlash(), FtlConfig{});
  BlockFlashCache cache(&ssd, BlockCacheConfig{});
  ASSERT_TRUE(cache.Put(5, 4096, 0).ok());
  ASSERT_TRUE(cache.Put(5, 12288, 0).ok());
  auto got = cache.Get(5, 0);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->hit);
  EXPECT_EQ(got->size_bytes, 12288u);
}

TEST(ZnsCacheTest, PutGetEvict) {
  ZnsDevice dev(SmallFlash(), DeviceConfig());
  ZnsFlashCache cache(&dev, ZnsCacheConfig{});
  SimTime t = 0;
  const std::uint64_t capacity_objects =
      static_cast<std::uint64_t>(dev.num_zones()) * dev.zone_size_pages();
  for (std::uint64_t k = 0; k < capacity_objects + 200; ++k) {
    auto p = cache.Put(k, 4096, t);
    ASSERT_TRUE(p.ok()) << p.status().ToString() << " at " << k;
    t = p.value();
  }
  EXPECT_GT(cache.stats().segments_recycled, 0u);
  EXPECT_GT(cache.stats().evicted_objects, 0u);
  auto oldest = cache.Get(0, t);
  ASSERT_TRUE(oldest.ok());
  EXPECT_FALSE(oldest->hit);
  auto newest = cache.Get(capacity_objects + 199, t);
  ASSERT_TRUE(newest.ok());
  EXPECT_TRUE(newest->hit);
}

TEST(ZnsCacheTest, NoStagingDramAndUnitWa) {
  ZnsDevice dev(SmallFlash(), DeviceConfig());
  ZnsFlashCache cache(&dev, ZnsCacheConfig{});
  EXPECT_EQ(cache.StagingDramBytes(), 0u);
  SimTime t = 0;
  const std::uint64_t churn =
      2 * static_cast<std::uint64_t>(dev.num_zones()) * dev.zone_size_pages();
  for (std::uint64_t k = 0; k < churn; ++k) {
    auto p = cache.Put(k % (churn / 3), 4096, t);
    ASSERT_TRUE(p.ok());
    t = p.value();
  }
  // Structural WA = 1: every flash program is a host write (eviction is reset, not copy).
  const FlashStats& fs = dev.flash().stats();
  EXPECT_EQ(fs.internal_pages_programmed, 0u);
}

TEST(ZnsCacheTest, LargeObjectSpanningPagesReadable) {
  FlashConfig fc = SmallFlash();
  fc.store_data = true;
  ZnsDevice dev(fc, DeviceConfig());
  ZnsFlashCache cache(&dev, ZnsCacheConfig{});
  ASSERT_TRUE(cache.Put(9, 5 * 4096 + 100, 0).ok());
  auto got = cache.Get(9, 0);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->hit);
  EXPECT_EQ(got->size_bytes, 5u * 4096 + 100);
  EXPECT_GT(got->completion, 0u);
}

TEST(CacheComparisonTest, NaiveBlockDesignAmplifiesWrites) {
  // The §4.1 story in one test: naive per-object placement on a conventional SSD causes FTL
  // GC; the coalescing design and the ZNS design avoid it.
  const std::uint64_t churn_objects = 6000;
  Rng rng(1);

  auto run_block = [&](bool coalesce) {
    ConventionalSsd ssd(SmallFlash(), FtlConfig{});
    BlockCacheConfig cfg;
    cfg.coalesce_writes = coalesce;
    BlockFlashCache cache(&ssd, cfg);
    Rng local(2);
    SimTime t = 0;
    for (std::uint64_t i = 0; i < churn_objects; ++i) {
      auto p = cache.Put(local.NextBelow(4000), 4096 + local.NextBelow(8192), t);
      EXPECT_TRUE(p.ok());
      t = p.value();
    }
    return ssd.WriteAmplification();
  };

  const double wa_naive = run_block(false);
  const double wa_coalesced = run_block(true);
  EXPECT_GT(wa_naive, 1.15);
  EXPECT_LT(wa_coalesced, wa_naive);
}

}  // namespace
}  // namespace blockhead
