// Tests for the state-digest audit layer (src/telemetry/audit/state_digest.h): the digest
// algebra's order independence, lazy epoch checkpointing, delegation + absorb-on-destroy,
// dump determinism, and the disabled-mode zero-cost guarantees the layer hooks rely on.

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/telemetry/audit/state_digest.h"
#include "src/telemetry/sink.h"
#include "src/telemetry/telemetry.h"
#include "src/util/histogram.h"
#include "src/util/types.h"

namespace blockhead {
namespace {

TEST(DigestValueTest, InsertRemoveCancelExactly) {
  DigestValue d;
  const std::uint64_t a = AuditHashWords({1, 2, 3});
  const std::uint64_t b = AuditHashWords({4, 5, 6});
  d.Insert(a);
  d.Insert(b);
  d.Remove(a);
  DigestValue only_b;
  only_b.Insert(b);
  EXPECT_EQ(d, only_b);
  d.Remove(b);
  EXPECT_EQ(d, DigestValue{});
}

TEST(DigestValueTest, OrderIndependence) {
  // The digest must depend only on the live-entry multiset, never on mutation order: the
  // same three entries inserted in all permutations (with unrelated churn in between)
  // produce identical accumulators.
  const std::vector<std::uint64_t> entries = {
      AuditHashWords({10}), AuditHashWords({20}), AuditHashWords({30})};
  DigestValue forward;
  for (const std::uint64_t e : entries) {
    forward.Insert(e);
  }
  DigestValue backward;
  const std::uint64_t churn = AuditHashWords({99});
  backward.Insert(churn);
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    backward.Insert(*it);
  }
  backward.Remove(churn);
  EXPECT_EQ(forward, backward);
  EXPECT_EQ(forward.ToHex(), backward.ToHex());
}

TEST(DigestValueTest, MultisetSemantics) {
  // Duplicate entries must be distinguishable from none: XOR alone would cancel a pair, but
  // the modular-sum fold tracks multiplicity.
  const std::uint64_t e = AuditHashWords({7});
  DigestValue twice;
  twice.Insert(e);
  twice.Insert(e);
  EXPECT_NE(twice, DigestValue{});
  EXPECT_EQ(twice.fold_xor, 0u);      // The XOR fold alone cannot see the pair...
  EXPECT_EQ(twice.fold_sum, e + e);   // ...the sum fold can.
}

TEST(DigestValueTest, ToHexIsFixedWidth) {
  DigestValue d;
  EXPECT_EQ(d.ToHex(), "0000000000000000.0000000000000000");
  d.Insert(~0ULL);
  EXPECT_EQ(d.ToHex(), "ffffffffffffffff.ffffffffffffffff");
  EXPECT_EQ(d.ToHex().size(), 33u);
}

TEST(AuditHashTest, BytesDependOnContentAndLength) {
  EXPECT_EQ(AuditHashBytes("abc"), AuditHashBytes("abc"));
  EXPECT_NE(AuditHashBytes("abc"), AuditHashBytes("abd"));
  EXPECT_NE(AuditHashBytes("abc"), AuditHashBytes(std::string_view("abc\0", 4)));
  EXPECT_NE(AuditHashBytes(""), AuditHashBytes(std::string(1, '\0')));
  // Longer-than-a-word strings chain across word boundaries.
  EXPECT_NE(AuditHashBytes("0123456789abcdef"), AuditHashBytes("0123456789abcdeF"));
}

TEST(AuditHashTest, HistogramDigestIsMergeOrderIndependent) {
  // A fleet merges per-device histograms in device order; a refactor that merges in a
  // different order must digest identically as long as the sample multiset matches.
  Histogram a;
  Histogram b;
  Histogram c;
  for (int i = 1; i <= 100; ++i) {
    (i % 3 == 0 ? a : (i % 3 == 1 ? b : c)).Record(static_cast<std::uint64_t>(i) * 1000);
  }
  Histogram abc;
  abc.Merge(a);
  abc.Merge(b);
  abc.Merge(c);
  Histogram cba;
  cba.Merge(c);
  cba.Merge(b);
  cba.Merge(a);
  Histogram direct;
  for (int i = 1; i <= 100; ++i) {
    direct.Record(static_cast<std::uint64_t>(i) * 1000);
  }
  EXPECT_EQ(AuditHashHistogram(abc), AuditHashHistogram(cba));
  EXPECT_EQ(AuditHashHistogram(abc), AuditHashHistogram(direct));
  direct.Record(1);
  EXPECT_NE(AuditHashHistogram(abc), AuditHashHistogram(direct));
}

TEST(StateAuditTest, DisabledHooksAreInert) {
  StateAudit audit;
  SubsystemDigest* sub = audit.Register("ftl.l2p");
  ASSERT_NE(sub, nullptr);
  EXPECT_FALSE(sub->armed());
  sub->Insert(0, AuditHashWords({1}));
  sub->Replace(10, AuditHashWords({1}), AuditHashWords({2}));
  EXPECT_EQ(sub->value(), DigestValue{});
  EXPECT_EQ(sub->mutations(), 0u);
}

TEST(StateAuditTest, EnableResetsAndArms) {
  StateAudit audit;
  SubsystemDigest* sub = audit.Register("ftl.l2p");
  audit.Enable(AuditConfig{.epoch_ns = 1000});
  EXPECT_TRUE(sub->armed());
  sub->Insert(10, AuditHashWords({1}));
  EXPECT_EQ(sub->mutations(), 1u);
  audit.Enable(AuditConfig{.epoch_ns = 1000});  // Re-enable: fresh digests.
  EXPECT_EQ(sub->value(), DigestValue{});
  EXPECT_EQ(sub->mutations(), 0u);
  EXPECT_EQ(audit.Register("ftl.l2p"), sub) << "Register must be get-or-create";
}

TEST(StateAuditTest, LazyCheckpointSealsOnlyMutatedEpochs) {
  StateAudit audit;
  audit.Enable(AuditConfig{.epoch_ns = 100});
  SubsystemDigest* sub = audit.Register("s");
  sub->Insert(10, AuditHashWords({1}));    // epoch 0
  sub->Insert(50, AuditHashWords({2}));    // epoch 0 again
  sub->Insert(730, AuditHashWords({3}));   // epoch 7: seals epoch 0, skips 1..6
  const std::string dump = audit.DumpJson();
  EXPECT_NE(dump.find("{\"epoch\":0,\"t_ns\":100,\"subsystem\":\"s\""), std::string::npos);
  EXPECT_EQ(dump.find("\"epoch\":1,"), std::string::npos) << "untouched epoch checkpointed";
  EXPECT_NE(dump.find("{\"epoch\":7,\"t_ns\":800,\"subsystem\":\"s\""), std::string::npos);
  // Sealed epoch 0 carries the 2-mutation running count; the live epoch-7 row carries 3.
  EXPECT_NE(dump.find("\"mutations\":2}"), std::string::npos);
  EXPECT_NE(dump.find("\"mutations\":3}"), std::string::npos);
}

TEST(StateAuditTest, DumpJsonIsDeterministicAndSorted) {
  StateAudit audit;
  audit.Enable(AuditConfig{.epoch_ns = 100});
  SubsystemDigest* zeta = audit.Register("zeta");
  SubsystemDigest* alpha = audit.Register("alpha");
  zeta->Insert(250, AuditHashWords({1}));
  alpha->Insert(10, AuditHashWords({2}));
  alpha->Insert(460, AuditHashWords({3}));
  const std::string dump = audit.DumpJson();
  EXPECT_EQ(dump, audit.DumpJson());
  // Row order is (epoch, name): alpha@0, zeta@2, alpha@4, then finals alpha, zeta, __run__.
  const std::size_t alpha0 = dump.find("\"epoch\":0,\"t_ns\":100,\"subsystem\":\"alpha\"");
  const std::size_t zeta2 = dump.find("\"epoch\":2,\"t_ns\":300,\"subsystem\":\"zeta\"");
  const std::size_t alpha4 = dump.find("\"epoch\":4,\"t_ns\":500,\"subsystem\":\"alpha\"");
  const std::size_t final_alpha = dump.find("{\"final\":true,\"subsystem\":\"alpha\"");
  const std::size_t final_run = dump.find("{\"final\":true,\"subsystem\":\"__run__\"");
  ASSERT_NE(alpha0, std::string::npos);
  ASSERT_NE(zeta2, std::string::npos);
  ASSERT_NE(alpha4, std::string::npos);
  ASSERT_NE(final_alpha, std::string::npos);
  ASSERT_NE(final_run, std::string::npos);
  EXPECT_LT(alpha0, zeta2);
  EXPECT_LT(zeta2, alpha4);
  EXPECT_LT(alpha4, final_alpha);
  EXPECT_LT(final_alpha, final_run);
}

TEST(StateAuditTest, EqualStatesByDifferentSchedulesDigestEqual) {
  // The whole point of order independence: two audits whose subsystems arrive at the same
  // entry multiset through different mutation schedules end with equal final digests (their
  // checkpoint timelines may differ; the finals may not).
  StateAudit run_a;
  run_a.Enable(AuditConfig{.epoch_ns = 100});
  SubsystemDigest* a = run_a.Register("s");
  a->Insert(10, AuditHashWords({1}));
  a->Insert(20, AuditHashWords({2}));
  a->Replace(30, AuditHashWords({2}), AuditHashWords({3}));

  StateAudit run_b;
  run_b.Enable(AuditConfig{.epoch_ns = 100});
  SubsystemDigest* b = run_b.Register("s");
  b->Insert(500, AuditHashWords({3}));
  b->Insert(900, AuditHashWords({1}));

  EXPECT_EQ(a->value(), b->value());
  EXPECT_NE(a->mutations(), b->mutations());
}

TEST(StateAuditTest, DelegationArmsChildrenAndPrefixesDump) {
  StateAudit root;
  StateAudit device;
  device.DelegateTo(&root, "fleet.dev00.");
  SubsystemDigest* sub = device.Register("flash.blocks");
  EXPECT_FALSE(sub->armed());
  root.Enable(AuditConfig{.epoch_ns = 100});
  EXPECT_TRUE(sub->armed()) << "delegated audit must arm from its root";
  sub->Insert(10, AuditHashWords({1}));
  const std::string dump = root.DumpJson();
  EXPECT_NE(dump.find("\"subsystem\":\"fleet.dev00.flash.blocks\""), std::string::npos);
  device.DelegateTo(nullptr);
  EXPECT_FALSE(sub->armed());
}

TEST(StateAuditTest, DestroyedChildHistoryIsAbsorbed) {
  StateAudit root;
  root.Enable(AuditConfig{.epoch_ns = 100});
  std::string before;
  {
    StateAudit device;
    device.DelegateTo(&root, "fleet.dev01.");
    SubsystemDigest* sub = device.Register("zones");
    sub->Insert(10, AuditHashWords({1}));
    sub->Insert(250, AuditHashWords({2}));  // Seals epoch 0.
    before = root.DumpJson();
  }
  const std::string after = root.DumpJson();
  EXPECT_EQ(before, after) << "absorbing a child must not change the dump";
  EXPECT_NE(after.find("\"subsystem\":\"fleet.dev01.zones\""), std::string::npos);
  EXPECT_NE(after.find("\"epoch\":0,\"t_ns\":100,\"subsystem\":\"fleet.dev01.zones\""),
            std::string::npos);
}

TEST(StateAuditTest, RunCompositeFoldsEverySubsystem) {
  StateAudit audit;
  audit.Enable(AuditConfig{.epoch_ns = 100});
  audit.Register("a")->Insert(10, AuditHashWords({1}));
  const std::string one = audit.DumpJson();
  audit.Register("b")->Insert(20, AuditHashWords({2}));
  const std::string two = audit.DumpJson();
  const auto run_line = [](const std::string& dump) {
    const std::size_t at = dump.find("\"__run__\"");
    return dump.substr(at, dump.find('\n', at) - at);
  };
  EXPECT_NE(run_line(one), run_line(two)) << "__run__ must cover every subsystem";
}

TEST(StateAuditTest, EpochEnvOverrideWins) {
  ::setenv("BLOCKHEAD_AUDIT_EPOCH_NS", "12345", 1);
  StateAudit audit;
  audit.Enable(AuditConfig{.epoch_ns = 999});
  ::unsetenv("BLOCKHEAD_AUDIT_EPOCH_NS");
  EXPECT_EQ(audit.epoch_ns(), 12345u);
}

TEST(StateAuditTest, TelemetryBundleExposesAuditWithoutRegistryRows) {
  // The audit layer must never add registry rows: --json output is identical with auditing
  // on or off (the digest timeline file is the only output channel).
  Telemetry telemetry;
  JsonLinesSink sink;
  std::string before;
  sink.Render("probe", telemetry.registry.Snapshot(), &before);
  telemetry.audit.Enable(AuditConfig{.epoch_ns = 100});
  telemetry.audit.Register("x")->Insert(10, AuditHashWords({1}));
  std::string after;
  sink.Render("probe", telemetry.registry.Snapshot(), &after);
  EXPECT_EQ(before, after);
}

}  // namespace
}  // namespace blockhead
