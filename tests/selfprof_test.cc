// Tests for the host-side self-profiler (src/telemetry/selfprof/): scope nesting and the
// exclusive-time attribution identity, sharding-stats determinism, the dual-clock Chrome
// trace schema, and the bench harness helpers that ride on the profiler (median publication,
// wall-clock-row stripping for the repeat determinism assert).

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_main.h"
#include "src/telemetry/metric_registry.h"
#include "src/telemetry/selfprof/self_profiler.h"
#include "src/telemetry/selfprof/sharding_stats.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/timeline.h"

namespace blockhead {
namespace {

// Busy-waits long enough for the monotonic clock to visibly advance (scopes in these tests
// must have nonzero width without depending on timer resolution).
void SpinAtLeast(std::uint64_t ns) {
  const std::uint64_t until = SelfProfiler::WallNowNs() + ns;
  while (SelfProfiler::WallNowNs() < until) {
  }
}

std::uint64_t SumSelfNs(const SelfProfiler& prof) {
  std::uint64_t sum = 0;
  for (std::size_t sub = 0; sub < static_cast<std::size_t>(ProfSubsystem::kCount); ++sub) {
    for (std::size_t op = 0; op < static_cast<std::size_t>(ProfOp::kCount); ++op) {
      sum += prof.cell(static_cast<ProfSubsystem>(sub), static_cast<ProfOp>(op)).self_ns;
    }
  }
  return sum;
}

TEST(SelfProfilerTest, DisabledScopesAreFreeAndRecordNothing) {
  SelfProfiler prof;
  {
    SelfProfiler::Scope outer(&prof, ProfSubsystem::kFlash, ProfOp::kRead);
    SelfProfiler::Scope inner(nullptr, ProfSubsystem::kFtl, ProfOp::kGc);
  }
  EXPECT_EQ(prof.cell(ProfSubsystem::kFlash, ProfOp::kRead).count, 0u);
  EXPECT_TRUE(prof.host_slices().empty());
  const SelfProfSample s = prof.Sample();
  EXPECT_EQ(s.total_events, 0u);
  EXPECT_EQ(s.flash_events, 0u);
}

TEST(SelfProfilerTest, NestedScopesAttributeExclusiveTime) {
  SelfProfiler prof;
  SelfProfConfig config;
  config.min_slice_ns = 0;
  prof.Enable(config);
  {
    SelfProfiler::Scope outer(&prof, ProfSubsystem::kBench, ProfOp::kOther);
    SpinAtLeast(200'000);
    {
      SelfProfiler::Scope inner(&prof, ProfSubsystem::kFlash, ProfOp::kRead);
      SpinAtLeast(200'000);
    }
    SpinAtLeast(200'000);
  }
  const ProfCell& outer_cell = prof.cell(ProfSubsystem::kBench, ProfOp::kOther);
  const ProfCell& inner_cell = prof.cell(ProfSubsystem::kFlash, ProfOp::kRead);
  ASSERT_EQ(outer_cell.count, 1u);
  ASSERT_EQ(inner_cell.count, 1u);
  // The child's full time nests inside the parent's total; the parent's self time excludes
  // exactly the child's total. Both are measured by one clock, so the identity is exact.
  EXPECT_GE(inner_cell.total_ns, 200'000u);
  EXPECT_EQ(inner_cell.total_ns, inner_cell.self_ns);
  EXPECT_GE(outer_cell.total_ns, inner_cell.total_ns + 400'000u);
  EXPECT_EQ(outer_cell.self_ns, outer_cell.total_ns - inner_cell.total_ns);
}

TEST(SelfProfilerTest, SelfTimesSumToRootTotalAcrossSubsystems) {
  SelfProfiler prof;
  SelfProfConfig config;
  config.min_slice_ns = 0;
  prof.Enable(config);
  {
    SelfProfiler::Scope root(&prof, ProfSubsystem::kBench, ProfOp::kOther);
    for (int i = 0; i < 3; ++i) {
      SelfProfiler::Scope ftl(&prof, ProfSubsystem::kFtl, ProfOp::kWrite);
      SpinAtLeast(50'000);
      {
        SelfProfiler::Scope flash(&prof, ProfSubsystem::kFlash, ProfOp::kWrite);
        SpinAtLeast(50'000);
      }
    }
    SpinAtLeast(50'000);
  }
  // The attribution identity: summing exclusive time over every cell reproduces the root
  // scope's inclusive total, exactly — no double counting, nothing unattributed.
  EXPECT_EQ(SumSelfNs(prof), prof.cell(ProfSubsystem::kBench, ProfOp::kOther).total_ns);
  EXPECT_EQ(prof.Sample().total_events, 7u);
  EXPECT_EQ(prof.Sample().flash_events, 3u);
}

TEST(SelfProfilerTest, DelegatedScopesCreditTheRootProfiler) {
  // Fleet devices own sub-bundles whose profilers delegate to the bench-level one: scopes
  // opened through the sub-profiler must land in the root's cells, nested in the root's
  // scope stack, and sim-time notes must reach the root frontier.
  SelfProfiler root;
  SelfProfiler device;
  SelfProfConfig config;
  config.min_slice_ns = 0;
  root.Enable(config);
  device.DelegateTo(&root);
  {
    SelfProfiler::Scope fleet(&root, ProfSubsystem::kFleet, ProfOp::kDispatch);
    SpinAtLeast(50'000);
    {
      SelfProfiler::Scope flash(&device, ProfSubsystem::kFlash, ProfOp::kRead);
      SpinAtLeast(50'000);
    }
  }
  device.NoteSimTime(12'345);
  EXPECT_EQ(device.cell(ProfSubsystem::kFlash, ProfOp::kRead).count, 0u);
  const ProfCell& flash_cell = root.cell(ProfSubsystem::kFlash, ProfOp::kRead);
  const ProfCell& fleet_cell = root.cell(ProfSubsystem::kFleet, ProfOp::kDispatch);
  ASSERT_EQ(flash_cell.count, 1u);
  // Proper nesting: the delegated child subtracts from the fleet scope's self time.
  EXPECT_EQ(fleet_cell.self_ns, fleet_cell.total_ns - flash_cell.total_ns);
  EXPECT_EQ(root.max_sim_time(), 12'345u);
  EXPECT_EQ(root.Sample().flash_events, 1u);
  device.DelegateTo(nullptr);  // Restored independence: scopes stay local (and disabled).
  { SelfProfiler::Scope local(&device, ProfSubsystem::kFlash, ProfOp::kRead); }
  EXPECT_EQ(root.cell(ProfSubsystem::kFlash, ProfOp::kRead).count, 1u);
}

TEST(SelfProfilerTest, SampleDerivesRatesSpeedupAndMemory) {
  SelfProfiler prof;
  prof.Enable();
  {
    SelfProfiler::Scope s(&prof, ProfSubsystem::kFlash, ProfOp::kWrite);
    SpinAtLeast(100'000);
  }
  prof.NoteSimTime(SimTime{50'000'000});
  prof.NoteSimTime(SimTime{10'000});  // Frontier keeps the max, not the last.
  const SelfProfSample s = prof.Sample();
  EXPECT_GE(s.wall_elapsed_ns, 100'000u);
  EXPECT_EQ(s.flash_events, 1u);
  EXPECT_GT(s.events_per_sec, 0.0);
  EXPECT_GT(s.ns_per_simulated_op, 0.0);
  EXPECT_DOUBLE_EQ(
      s.sim_speedup,
      50'000'000.0 / static_cast<double>(s.wall_elapsed_ns));
  EXPECT_GT(s.rss_bytes, 0u);       // Linux CI: /proc/self/statm is present.
  EXPECT_GT(s.peak_rss_bytes, 0u);  // getrusage.
}

TEST(SelfProfilerTest, SpinHookInflatesFlashScopesOnly) {
  SelfProfiler prof;
  SelfProfConfig config;
  config.spin_flash_ns = 300'000;
  prof.Enable(config);
  { SelfProfiler::Scope s(&prof, ProfSubsystem::kFlash, ProfOp::kRead); }
  { SelfProfiler::Scope s(&prof, ProfSubsystem::kFtl, ProfOp::kRead); }
  EXPECT_GE(prof.cell(ProfSubsystem::kFlash, ProfOp::kRead).total_ns, 300'000u);
  EXPECT_LT(prof.cell(ProfSubsystem::kFtl, ProfOp::kRead).total_ns, 300'000u);
}

TEST(SelfProfilerTest, SliceRingDropsOldestBeyondBound) {
  SelfProfiler prof;
  SelfProfConfig config;
  config.min_slice_ns = 0;
  config.max_slices = 4;
  prof.Enable(config);
  for (int i = 0; i < 10; ++i) {
    SelfProfiler::Scope s(&prof, ProfSubsystem::kKv, ProfOp::kRead);
  }
  EXPECT_EQ(prof.host_slices().size(), 4u);
  EXPECT_EQ(prof.slices_dropped(), 6u);
  // Re-enabling starts a fresh profile.
  prof.Enable(config);
  EXPECT_TRUE(prof.host_slices().empty());
  EXPECT_EQ(prof.slices_dropped(), 0u);
}

TEST(SelfProfilerTest, PublishToEmitsHostPrefixedBreakdown) {
  SelfProfiler prof;
  SelfProfConfig config;
  config.min_slice_ns = 0;
  prof.Enable(config);
  {
    SelfProfiler::Scope s(&prof, ProfSubsystem::kFlash, ProfOp::kWrite);
    SpinAtLeast(50'000);
  }
  MetricRegistry registry;
  prof.PublishTo(registry);
  EXPECT_EQ(registry.GetCounter("selfprof.host.flash_events")->value(), 1u);
  EXPECT_GT(registry.GetCounter("selfprof.host.flash.write.count")->value(), 0u);
  EXPECT_GT(registry.GetCounter("selfprof.host.flash.self_ns")->value(), 0u);
  EXPECT_GT(registry.GetGauge("selfprof.host.ns_per_simulated_op")->value(), 0.0);
}

TEST(ShardingStatsTest, OccupancyAndCrossChannelDepsAreDeterministic) {
  ShardingStats stats;
  stats.Init(2, 4);
  // Channel sequence 0,1,0,0: two consecutive-op channel switches, one stay.
  stats.RecordOp(0, 0);
  stats.RecordOp(1, 2);
  stats.RecordOp(0, 1);
  stats.RecordOp(0, 1);
  EXPECT_DOUBLE_EQ(stats.CrossDepFraction(), 2.0 / 3.0);
  // Channel 0 carried 3 of 4 events: the serial-channel bound on parallel speedup is 4/3.
  EXPECT_DOUBLE_EQ(stats.ParallelSpeedupBound(), 4.0 / 3.0);

  // Publishing is idempotent and the histograms rebuild identically each time: the snapshots
  // must be byte-identical (the property that lets sharding rows live in BENCH_baseline.json).
  MetricRegistry registry;
  stats.PublishTo(registry, "dev");
  auto render = [&registry] {
    std::string out;
    JsonLinesSink().Render("t", registry.Snapshot(), &out);
    return out;
  };
  const std::string first = render();
  stats.PublishTo(registry, "dev");
  EXPECT_EQ(render(), first);
  EXPECT_EQ(registry.GetCounter("dev.sharding.events")->value(), 4u);
  EXPECT_EQ(registry.GetCounter("dev.sharding.cross_channel_deps")->value(), 2u);
  EXPECT_EQ(registry.GetCounter("dev.sharding.same_channel_deps")->value(), 1u);
  EXPECT_EQ(registry.GetHistogram("dev.sharding.channel_occupancy")->count(), 2u);
  EXPECT_EQ(registry.GetHistogram("dev.sharding.plane_occupancy")->count(), 4u);
}

TEST(DualClockTraceTest, HostSlicesExportAsFourthProcess) {
  Telemetry telemetry;
  telemetry.timeline.Enable();
  telemetry.timeline.RecordSpan("read", 100, 200);
  SelfProfConfig config;
  config.min_slice_ns = 0;
  telemetry.selfprof.Enable(config);
  {
    SelfProfiler::Scope s(&telemetry.selfprof, ProfSubsystem::kFlash, ProfOp::kWrite);
    SpinAtLeast(10'000);
  }
  {
    SelfProfiler::Scope s(&telemetry.selfprof, ProfSubsystem::kKv, ProfOp::kCompaction);
    SpinAtLeast(10'000);
  }

  const std::string dual = telemetry.timeline.ExportChromeTrace(&telemetry.selfprof);
  EXPECT_NE(dual.find("\"self-profile (host clock)\""), std::string::npos);
  EXPECT_NE(dual.find("\"host.flash\""), std::string::npos);
  EXPECT_NE(dual.find("\"host.kv\""), std::string::npos);
  EXPECT_NE(dual.find("\"cat\":\"selfprof\""), std::string::npos);
  EXPECT_NE(dual.find("\"pid\":" + std::to_string(Timeline::kSelfProfilePid)),
            std::string::npos);
  // The SimTime-domain content is still there alongside.
  EXPECT_NE(dual.find("\"cat\":\"span\""), std::string::npos);

  // Without the profiler the export is unchanged single-clock output: no pid-3 track.
  const std::string single = telemetry.timeline.ExportChromeTrace();
  EXPECT_EQ(single.find("self-profile"), std::string::npos);
  EXPECT_EQ(single.find("\"cat\":\"selfprof\""), std::string::npos);
}

TEST(BenchHarnessTest, StripHostMetricRowsRemovesOnlyWallClockRows) {
  const std::string dump =
      "{\"metric\":\"flash.reads\",\"value\":7}\n"
      "{\"metric\":\"selfprof.host.ns_per_simulated_op\",\"value\":123.4}\n"
      "{\"metric\":\"dev.sharding.events\",\"value\":9}\n"
      "{\"metric\":\"selfprof.host.flash.read.count\",\"value\":7}\n";
  EXPECT_EQ(StripHostMetricRows(dump),
            "{\"metric\":\"flash.reads\",\"value\":7}\n"
            "{\"metric\":\"dev.sharding.events\",\"value\":9}\n");
}

TEST(BenchHarnessTest, MedianPerfSampleOverwritesDerivedGauges) {
  MetricRegistry registry;
  std::vector<SelfProfSample> samples(3);
  samples[0].wall_elapsed_ns = 100;
  samples[1].wall_elapsed_ns = 900;  // Noisy outlier the median must suppress.
  samples[2].wall_elapsed_ns = 120;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i].ns_per_simulated_op = static_cast<double>(samples[i].wall_elapsed_ns) / 10.0;
    samples[i].events_per_sec = 1e9 / samples[i].ns_per_simulated_op;
    samples[i].sim_speedup = static_cast<double>(i + 1);
  }
  PublishMedianPerfSample(registry, samples);
  EXPECT_EQ(registry.GetCounter("selfprof.host.wall_elapsed_ns")->value(), 120u);
  EXPECT_DOUBLE_EQ(registry.GetGauge("selfprof.host.ns_per_simulated_op")->value(), 12.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("selfprof.host.sim_speedup")->value(), 2.0);
  EXPECT_EQ(registry.GetCounter("selfprof.host.repeats")->value(), 3u);
}

}  // namespace
}  // namespace blockhead
