// Differential (model-based) property tests: randomized operation streams run simultaneously
// against the real stacks and trivially-correct in-memory reference models; any divergence is
// a bug. Parameterized over seeds.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/ftl/conventional_ssd.h"
#include "src/hostftl/host_ftl.h"
#include "src/kv/ycsb.h"
#include "src/util/rng.h"
#include "src/zonefile/zone_file_system.h"

namespace blockhead {
namespace {

FlashConfig SmallFlash() {
  FlashConfig c;
  c.geometry = FlashGeometry::Small();
  c.timing = FlashTiming::FastForTests();
  return c;
}

ZnsConfig DeviceConfig() {
  ZnsConfig z;
  z.max_active_zones = 10;
  z.max_open_zones = 10;
  return z;
}

std::vector<std::uint8_t> Page(std::uint64_t tag) {
  std::vector<std::uint8_t> v(4096);
  for (std::size_t i = 0; i < 8; ++i) {
    v[i] = static_cast<std::uint8_t>(tag >> (8 * i));
  }
  v[100] = static_cast<std::uint8_t>(tag * 7);
  return v;
}

// --- Conventional SSD vs reference map ---

class SsdDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SsdDifferentialTest, RandomOpsMatchReferenceModel) {
  ConventionalSsd ssd(SmallFlash(), FtlConfig{});
  std::map<std::uint64_t, std::uint64_t> reference;  // lba -> tag (absent = zeros).
  Rng rng(GetParam());
  SimTime t = 0;
  const std::uint64_t n = ssd.num_blocks();
  std::uint64_t tag = 1;

  for (int op = 0; op < 6000; ++op) {
    const std::uint64_t lba = rng.NextBelow(n);
    const std::uint64_t roll = rng.NextBelow(10);
    if (roll < 5) {  // Write.
      auto w = ssd.WriteBlocks(Lba{lba}, 1, t, Page(tag));
      ASSERT_TRUE(w.ok());
      t = w.value();
      reference[lba] = tag++;
    } else if (roll < 7) {  // Trim.
      ASSERT_TRUE(ssd.TrimBlocks(Lba{lba}, 1, t).ok());
      reference.erase(lba);
    } else {  // Read + verify.
      std::vector<std::uint8_t> out(4096);
      auto r = ssd.ReadBlocks(Lba{lba}, 1, t, out);
      ASSERT_TRUE(r.ok());
      auto it = reference.find(lba);
      const std::vector<std::uint8_t> expect =
          it == reference.end() ? std::vector<std::uint8_t>(4096, 0) : Page(it->second);
      ASSERT_EQ(out, expect) << "lba " << lba << " op " << op;
    }
  }
  EXPECT_TRUE(ssd.CheckConsistency().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SsdDifferentialTest, ::testing::Values(11, 22, 33, 44));

// --- Host-FTL block device vs reference map ---

class HostFtlDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HostFtlDifferentialTest, RandomOpsMatchReferenceModel) {
  ZnsDevice dev(SmallFlash(), DeviceConfig());
  HostFtlConfig cfg;
  cfg.use_append = GetParam() % 2 == 0;  // Alternate write paths across seeds.
  HostFtlBlockDevice ftl(&dev, cfg);
  std::map<std::uint64_t, std::uint64_t> reference;
  Rng rng(GetParam());
  SimTime t = 0;
  const std::uint64_t n = ftl.num_blocks();
  std::uint64_t tag = 1;

  for (int op = 0; op < 6000; ++op) {
    const std::uint64_t lba = rng.NextBelow(n);
    const std::uint64_t roll = rng.NextBelow(10);
    if (roll < 5) {
      auto w = ftl.WriteBlocks(Lba{lba}, 1, t, Page(tag));
      ASSERT_TRUE(w.ok()) << w.status().ToString();
      t = w.value();
      reference[lba] = tag++;
    } else if (roll < 7) {
      ASSERT_TRUE(ftl.TrimBlocks(Lba{lba}, 1, t).ok());
      reference.erase(lba);
    } else {
      std::vector<std::uint8_t> out(4096);
      auto r = ftl.ReadBlocks(Lba{lba}, 1, t, out);
      ASSERT_TRUE(r.ok());
      auto it = reference.find(lba);
      const std::vector<std::uint8_t> expect =
          it == reference.end() ? std::vector<std::uint8_t>(4096, 0) : Page(it->second);
      ASSERT_EQ(out, expect) << "lba " << lba << " op " << op;
    }
    if (op % 64 == 0) {
      ftl.Pump(t, false, 1);
    }
  }
  EXPECT_TRUE(ftl.CheckConsistency().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HostFtlDifferentialTest, ::testing::Values(10, 21, 32, 43));

// --- Zonefile vs reference filesystem, with remounts mid-stream ---

class ZonefileDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ZonefileDifferentialTest, RandomOpsWithRemountsMatchReference) {
  ZnsDevice dev(SmallFlash(), DeviceConfig());
  auto fs_or = ZoneFileSystem::Format(&dev, ZoneFileConfig{}, 0);
  ASSERT_TRUE(fs_or.ok());
  std::unique_ptr<ZoneFileSystem> fs = std::move(fs_or).value();

  struct RefFile {
    Lifetime hint;
    std::vector<std::uint8_t> synced;    // Durable content.
    std::vector<std::uint8_t> unsynced;  // Tail appended since the last sync.
  };
  std::map<std::string, RefFile> reference;
  Rng rng(GetParam());
  SimTime t = 0;
  std::uint64_t serial = 0;

  for (int op = 0; op < 2500; ++op) {
    const std::uint64_t roll = rng.NextBelow(100);
    if (roll < 20) {  // Create.
      const std::string name = "f" + std::to_string(serial++);
      const Lifetime hint = static_cast<Lifetime>(rng.NextBelow(kLifetimeClasses));
      ASSERT_TRUE(fs->Create(name, hint, t).ok());
      reference[name] = RefFile{hint, {}, {}};
    } else if (roll < 55 && !reference.empty()) {  // Append.
      auto it = reference.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(reference.size())));
      std::vector<std::uint8_t> data(1 + rng.NextBelow(9000));
      for (auto& b : data) {
        b = static_cast<std::uint8_t>(rng.Next());
      }
      auto a = fs->Append(it->first, data, t);
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      t = a.value();
      it->second.unsynced.insert(it->second.unsynced.end(), data.begin(), data.end());
    } else if (roll < 70 && !reference.empty()) {  // Sync.
      auto it = reference.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(reference.size())));
      ASSERT_TRUE(fs->Sync(it->first, t).ok());
      it->second.synced.insert(it->second.synced.end(), it->second.unsynced.begin(),
                               it->second.unsynced.end());
      it->second.unsynced.clear();
    } else if (roll < 80 && !reference.empty()) {  // Delete.
      auto it = reference.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(reference.size())));
      ASSERT_TRUE(fs->Delete(it->first, t).ok());
      reference.erase(it);
    } else if (roll < 95 && !reference.empty()) {  // Read + verify full content.
      auto it = reference.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(reference.size())));
      std::vector<std::uint8_t> expect = it->second.synced;
      expect.insert(expect.end(), it->second.unsynced.begin(), it->second.unsynced.end());
      ASSERT_EQ(fs->FileSize(it->first).value(), expect.size());
      std::vector<std::uint8_t> out(expect.size());
      if (!expect.empty()) {
        auto r = fs->Read(it->first, 0, out, t);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        ASSERT_EQ(out, expect) << it->first;
      }
    } else {  // Crash + remount: unsynced bytes roll back in BOTH models.
      fs.reset();
      auto remounted = ZoneFileSystem::Mount(&dev, ZoneFileConfig{}, t);
      ASSERT_TRUE(remounted.ok()) << remounted.status().ToString();
      fs = std::move(remounted).value();
      for (auto& [name, ref] : reference) {
        ref.unsynced.clear();
      }
      // Files created but never synced survive (creates are journaled immediately).
      ASSERT_TRUE(fs->CheckConsistency().ok());
    }
    if (op % 32 == 0) {
      fs->Pump(t, false, 1);
    }
  }

  // Final full verification.
  for (const auto& [name, ref] : reference) {
    ASSERT_TRUE(fs->Exists(name)) << name;
    std::vector<std::uint8_t> expect = ref.synced;
    expect.insert(expect.end(), ref.unsynced.begin(), ref.unsynced.end());
    ASSERT_EQ(fs->FileSize(name).value(), expect.size()) << name;
    if (!expect.empty()) {
      std::vector<std::uint8_t> out(expect.size());
      ASSERT_TRUE(fs->Read(name, 0, out, t).ok());
      ASSERT_EQ(out, expect) << name;
    }
  }
  EXPECT_TRUE(fs->CheckConsistency().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZonefileDifferentialTest, ::testing::Values(5, 15, 25));

// --- YCSB smoke on both backends ---

TEST(YcsbTest, AllWorkloadsRunCleanOnZns) {
  ZnsDevice dev(SmallFlash(), DeviceConfig());
  auto fs = ZoneFileSystem::Format(&dev, ZoneFileConfig{}, 0);
  ASSERT_TRUE(fs.ok());
  ZoneEnv env(fs.value().get());
  KvConfig kv;
  kv.memtable_bytes = 16 * kKiB;
  kv.level_base_bytes = 256 * kKiB;
  kv.max_levels = 4;
  auto store = KvStore::Open(&env, kv, 0);
  ASSERT_TRUE(store.ok());
  YcsbConfig cfg;
  cfg.record_count = 3000;
  cfg.operation_count = 1500;
  auto loaded = YcsbLoad(*store.value(), cfg, 0);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (const YcsbWorkload w : {YcsbWorkload::kA, YcsbWorkload::kB, YcsbWorkload::kC,
                               YcsbWorkload::kD, YcsbWorkload::kE, YcsbWorkload::kF}) {
    const YcsbResult r = YcsbRun(*store.value(), w, cfg, loaded.value());
    ASSERT_TRUE(r.status.ok()) << YcsbName(w) << ": " << r.status.ToString();
    // RMW ops count both their read and their update, so the total can exceed op_count.
    EXPECT_GE(r.reads + r.updates + r.inserts + r.scans, cfg.operation_count) << YcsbName(w);
    EXPECT_EQ(r.not_found, 0u) << YcsbName(w) << " lost keys";
    if (w == YcsbWorkload::kE) {
      EXPECT_GT(r.scans, 0u);
      EXPECT_GT(r.scanned_entries, r.scans) << "scans should return multiple entries";
    }
    EXPECT_GT(r.OpsPerSecond(), 0.0);
  }
}

}  // namespace
}  // namespace blockhead
