// Unit tests for the strong ID / quantity types: construction, comparison, hashing,
// arithmetic, checked-overflow behavior, and the named unit conversions. The negative space
// — what must NOT compile — is proven by tests/strong_id_compile_fail.cc via the
// strong_id_compile_fail ctest harness.

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "src/core/strong_id.h"

namespace blockhead {
namespace {

TEST(StrongIdTest, ConstructionAndValue) {
  constexpr ChannelId c{3};
  static_assert(c.value() == 3u);
  EXPECT_EQ(Lba{}.value(), 0u);  // Default: zero.
  EXPECT_EQ(Ppa{7}.value(), 7u);
}

TEST(StrongIdTest, ComparisonIsTotalOrder) {
  EXPECT_EQ(BlockId{4}, BlockId{4});
  EXPECT_NE(BlockId{4}, BlockId{5});
  EXPECT_LT(BlockId{4}, BlockId{5});
  EXPECT_GE(BlockId{5}, BlockId{5});
  static_assert(ZoneId{1} < ZoneId{2});
}

TEST(StrongIdTest, IncrementAndOffsetArithmetic) {
  Lba lba{10};
  EXPECT_EQ((++lba).value(), 11u);
  EXPECT_EQ((lba++).value(), 11u);
  EXPECT_EQ(lba.value(), 12u);
  EXPECT_EQ((lba + 8).value(), 20u);
  EXPECT_EQ((lba - 2).value(), 10u);
  // ID - ID -> integer distance, not an ID.
  const std::uint64_t distance = Lba{20} - Lba{12};
  EXPECT_EQ(distance, 8u);
}

TEST(StrongIdTest, OffsetWidensSmallerIntegers) {
  // Lba's representation is uint64; adding a uint32 offset must widen, not truncate.
  const std::uint32_t small_offset = 5;
  EXPECT_EQ((Lba{1} + small_offset).value(), 6u);
}

TEST(StrongIdTest, HashMatchesRepresentation) {
  EXPECT_EQ(std::hash<PageId>{}(PageId{42}), std::hash<std::uint32_t>{}(42u));
  std::unordered_set<ZoneId> zones{ZoneId{1}, ZoneId{2}, ZoneId{1}};
  EXPECT_EQ(zones.size(), 2u);
  std::unordered_map<Lba, int> map;
  map[Lba{9}] = 1;
  EXPECT_EQ(map.count(Lba{9}), 1u);
  EXPECT_EQ(map.count(Lba{10}), 0u);
}

TEST(StrongIdTest, StreamInsertionPrintsValue) {
  std::ostringstream os;
  os << ChannelId{2} << "/" << Lba{17};
  EXPECT_EQ(os.str(), "2/17");
}

TEST(QuantityTest, ArithmeticGroup) {
  EXPECT_EQ((Bytes{4096} + Bytes{4096}).value(), 8192u);
  EXPECT_EQ((Bytes{8192} - Bytes{4096}).value(), 4096u);
  EXPECT_EQ((Pages{3} * 4).value(), 12u);
  EXPECT_EQ((4 * Pages{3}).value(), 12u);
  Bytes b{10};
  b += Bytes{5};
  b -= Bytes{3};
  EXPECT_EQ(b.value(), 12u);
}

TEST(QuantityTest, ComparisonAndHash) {
  EXPECT_LT(Bytes{1}, Bytes{2});
  EXPECT_EQ(Pages{7}, Pages{7});
  EXPECT_EQ(std::hash<Bytes>{}(Bytes{99}), std::hash<std::uint64_t>{}(99u));
}

TEST(QuantityTest, OverflowAborts) {
  const Bytes max{~0ULL};
  EXPECT_DEATH((void)(max + Bytes{1}), "overflow in operator\\+");
  EXPECT_DEATH((void)(Bytes{0} - Bytes{1}), "overflow in operator-");
  EXPECT_DEATH((void)(max * 2), "overflow in operator\\*");
}

TEST(QuantityTest, NamedUnitConversions) {
  EXPECT_EQ(PagesToBytes(Pages{3}, 4096).value(), 3u * 4096);
  EXPECT_EQ(BytesToPagesCeil(Bytes{1}, 4096).value(), 1u);
  EXPECT_EQ(BytesToPagesCeil(Bytes{4096}, 4096).value(), 1u);
  EXPECT_EQ(BytesToPagesCeil(Bytes{4097}, 4096).value(), 2u);
  EXPECT_EQ(BytesToPagesCeil(Bytes{0}, 4096).value(), 0u);
}

TEST(StrongIdTest, ZeroOverheadRepresentation) {
  static_assert(sizeof(ChannelId) == sizeof(std::uint32_t));
  static_assert(sizeof(Lba) == sizeof(std::uint64_t));
  static_assert(sizeof(Bytes) == sizeof(std::uint64_t));
  static_assert(std::is_trivially_copyable_v<Lba>);
  static_assert(std::is_trivially_destructible_v<Bytes>);
}

}  // namespace
}  // namespace blockhead
