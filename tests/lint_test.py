#!/usr/bin/env python3
"""Unit tests for tools/lint.py (registered as the lint_rules ctest).

Each rule is exercised directly on small in-memory fixtures: one snippet that must trigger
the rule and a nearby negative that must not (the opt-outs and naming conventions are part
of the contract). The header self-containment probe needs a compiler and is covered by
running lint.py itself in ci.sh --lint; here the probe is skipped and the final test
asserts the committed tree passes its own lint.
"""

import os
import pathlib
import sys
import unittest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import lint  # noqa: E402


def findings_of(rule_fn, path, text, *extra):
    return list(rule_fn(path, text.splitlines(), *extra))


class WallClockRuleTest(unittest.TestCase):
    def test_flags_system_clock(self):
        out = findings_of(
            lint.check_wall_clock,
            os.path.join("src", "ftl", "x.cc"),
            "auto t = std::chrono::system_clock::now();\n",
        )
        self.assertEqual(len(out), 1)
        self.assertEqual(out[0][2], "wall-clock")

    def test_flags_time_header_include(self):
        out = findings_of(
            lint.check_wall_clock, os.path.join("src", "ftl", "x.cc"), "#include <ctime>\n")
        self.assertEqual(len(out), 1)

    def test_ignores_simtime_and_comment_mentions(self):
        clean = "SimTime t{0};\n// runs synchronously with the event loop\n"
        self.assertEqual(
            findings_of(lint.check_wall_clock, os.path.join("src", "ftl", "x.cc"), clean), [])

    def test_ignores_files_outside_src(self):
        text = "auto t = std::chrono::steady_clock::now();\n"
        self.assertEqual(
            findings_of(lint.check_wall_clock, os.path.join("bench", "x.cc"), text), [])

    SELFPROF = os.path.join("src", "telemetry", "selfprof", "self_profiler.cc")

    def test_selfprof_may_use_steady_clock_and_chrono(self):
        text = ("#include <chrono>\n"
                "auto t = std::chrono::steady_clock::now();\n")
        self.assertEqual(findings_of(lint.check_wall_clock, self.SELFPROF, text), [])

    def test_selfprof_calendar_clocks_still_banned(self):
        text = ("#include <ctime>\n"
                "auto t = std::chrono::system_clock::now();\n"
                "auto h = std::chrono::high_resolution_clock::now();\n"
                "time(nullptr);\n")
        out = findings_of(lint.check_wall_clock, self.SELFPROF, text)
        self.assertEqual(len(out), 4)
        self.assertTrue(all(f[2] == "wall-clock" for f in out))

    def test_steady_clock_outside_selfprof_still_banned(self):
        text = "auto t = std::chrono::steady_clock::now();\n"
        out = findings_of(
            lint.check_wall_clock, os.path.join("src", "telemetry", "timeline.cc"), text)
        self.assertEqual(len(out), 1)


class CauseScopeRuleTest(unittest.TestCase):
    PROGRAM = "dev->ProgramPage(addr, now);\n"

    def test_flags_program_without_scope(self):
        out = findings_of(lint.check_cause_scope, os.path.join("src", "kv", "x.cc"),
                          self.PROGRAM)
        self.assertEqual(len(out), 1)
        self.assertEqual(out[0][2], "cause-scope")

    def test_scope_in_file_satisfies_rule(self):
        text = "WriteProvenance::CauseScope scope(WriteCause::kLsmFlush);\n" + self.PROGRAM
        self.assertEqual(
            findings_of(lint.check_cause_scope, os.path.join("src", "kv", "x.cc"), text), [])

    def test_passthrough_optout(self):
        text = "// lint: provenance-passthrough -- host-commanded op\n" + self.PROGRAM
        self.assertEqual(
            findings_of(lint.check_cause_scope, os.path.join("src", "kv", "x.cc"), text), [])

    def test_flash_layer_exempt(self):
        self.assertEqual(
            findings_of(lint.check_cause_scope, os.path.join("src", "flash", "x.cc"),
                        self.PROGRAM), [])

    def test_headers_exempt(self):
        self.assertEqual(
            findings_of(lint.check_cause_scope, os.path.join("src", "kv", "x.h"),
                        self.PROGRAM), [])


class NakedAddressRuleTest(unittest.TestCase):
    def test_flags_naked_channel_and_block_params(self):
        text = "void Erase(std::uint32_t channel, std::uint32_t block);\n"
        out = findings_of(lint.check_naked_address_params,
                          os.path.join("src", "flash", "x.h"), text)
        self.assertEqual(len(out), 2)
        self.assertIn("ChannelId", out[0][3])
        self.assertIn("BlockId", out[1][3])

    def test_flags_naked_lba_param(self):
        text = "Result<SimTime> Read(std::uint64_t lba, SimTime now);\n"
        out = findings_of(lint.check_naked_address_params,
                          os.path.join("src", "zns", "x.h"), text)
        self.assertEqual(len(out), 1)
        self.assertIn("Lba", out[0][3])

    def test_strong_types_and_index_names_pass(self):
        text = ("void Erase(ChannelId channel, BlockId block);\n"
                "void Drop(std::uint32_t zone_index);\n")
        self.assertEqual(
            findings_of(lint.check_naked_address_params,
                        os.path.join("src", "flash", "x.h"), text), [])

    def test_strong_id_header_exempt(self):
        text = "void F(std::uint32_t channel);\n"
        self.assertEqual(
            findings_of(lint.check_naked_address_params,
                        os.path.join("src", "core", "strong_id.h"), text), [])


class FleetLayeringRuleTest(unittest.TestCase):
    def test_flags_device_internal_calls(self):
        text = ("zns->ResetZone(ZoneId{3}, now);\n"
                "dev.flash().stats();\n")
        out = findings_of(lint.check_fleet_layering,
                          os.path.join("src", "fleet", "x.cc"), text)
        self.assertEqual(len(out), 2)
        self.assertTrue(all(f[2] == "fleet-layering" for f in out))
        self.assertIn("ResetZone", out[0][3])
        self.assertIn("flash()", out[1][3])

    def test_flags_direct_flash_include(self):
        text = '#include "src/flash/flash_device.h"\n'
        out = findings_of(lint.check_fleet_layering,
                          os.path.join("src", "fleet", "x.h"), text)
        self.assertEqual(len(out), 1)
        self.assertIn("include", out[0][3])

    def test_host_interface_and_pumps_pass(self):
        text = ("dev->block->WriteBlocks(lba, count, issue, data);\n"
                "dev->conv->RunBackgroundGc(now, 1);\n"
                "dev->hostftl->Pump(now, false, 1);\n"
                "dev->conv->AttachTelemetry(telemetry, \"dev\");\n")
        self.assertEqual(
            findings_of(lint.check_fleet_layering,
                        os.path.join("src", "fleet", "x.cc"), text), [])

    def test_eventlog_append_is_not_zone_append(self):
        text = "telemetry_->events.Append(now, TimelineEventType::kShardMigration, p, d);\n"
        self.assertEqual(
            findings_of(lint.check_fleet_layering,
                        os.path.join("src", "fleet", "x.cc"), text), [])

    def test_other_layers_exempt(self):
        text = "zns->ResetZone(ZoneId{3}, now);\n"
        self.assertEqual(
            findings_of(lint.check_fleet_layering,
                        os.path.join("src", "hostftl", "x.cc"), text), [])


class RngDisciplineRuleTest(unittest.TestCase):
    def test_flags_rand_and_srand(self):
        text = "int r = rand();\nsrand(42);\n"
        out = findings_of(lint.check_rng_discipline,
                          os.path.join("src", "workload", "x.cc"), text)
        self.assertEqual(len(out), 2)
        self.assertTrue(all(f[2] == "rng-discipline" for f in out))
        self.assertIn("hidden global state", out[0][3])

    def test_flags_random_device(self):
        text = "std::random_device rd;\n"
        out = findings_of(lint.check_rng_discipline,
                          os.path.join("src", "kv", "x.cc"), text)
        self.assertEqual(len(out), 1)
        self.assertIn("hardware entropy", out[0][3])

    def test_flags_raw_mt19937_seeding(self):
        text = ("std::mt19937 gen{std::random_device{}()};\n"
                "std::mt19937_64 gen64(seed);\n")
        out = findings_of(lint.check_rng_discipline,
                          os.path.join("src", "ftl", "x.cc"), text)
        self.assertEqual(len(out), 3)  # mt19937 + random_device + mt19937_64

    def test_sanctioned_rng_and_lookalikes_pass(self):
        text = ("Rng rng(config_.seed);\n"
                "std::uint64_t r = rng.Next();\n"
                "double o = zipf_.operand();\n"  # `rand(` inside an identifier
                "// never call rand() here\n")
        self.assertEqual(
            findings_of(lint.check_rng_discipline,
                        os.path.join("src", "workload", "x.cc"), text), [])

    def test_rng_implementation_itself_exempt(self):
        text = "std::mt19937_64 reference(seed);  // cross-check in comments\n"
        for name in ("rng.h", "rng.cc"):
            self.assertEqual(
                findings_of(lint.check_rng_discipline,
                            os.path.join("src", "util", name), text), [])

    def test_files_outside_src_exempt(self):
        text = "int r = rand();\n"
        self.assertEqual(
            findings_of(lint.check_rng_discipline,
                        os.path.join("tools", "x.cc"), text), [])


class RequestContextRuleTest(unittest.TestCase):
    def test_flags_byvalue_parameter(self):
        text = "Status Admit(ShardId shard, SimTime now, RequestContext ctx);\n"
        out = findings_of(lint.check_request_context,
                          os.path.join("src", "fleet", "x.h"), text)
        self.assertEqual(len(out), 1)
        self.assertEqual(out[0][2], "request-context")
        self.assertIn("const RequestContext&", out[0][3])

    def test_flags_mutable_reference(self):
        text = "void Route(RequestContext& ctx);\n"
        out = findings_of(lint.check_request_context,
                          os.path.join("src", "fleet", "x.cc"), text)
        self.assertEqual(len(out), 1)
        self.assertIn("const reference", out[0][3])

    def test_flags_member_storage(self):
        header = "  RequestContext last_ctx_;\n"
        out = findings_of(lint.check_request_context,
                          os.path.join("src", "fleet", "x.h"), header)
        self.assertEqual(len(out), 1)
        self.assertIn("stored", out[0][3])
        cc_member = "RequestContext saved_ctx_ = {};\n"
        out = findings_of(lint.check_request_context,
                          os.path.join("src", "queue", "x.cc"), cc_member)
        self.assertEqual(len(out), 1)

    def test_const_ref_and_temporaries_pass(self):
        text = ("Status Admit(ShardId shard, SimTime now, const RequestContext& ctx = {});\n"
                "RequestPathLedger::RequestScope scope(ledger,\n"
                "    RequestContext{config_.tenant, ReqOp::kWrite}, now);\n"
                "const RequestContext ctx{options.tenant, op};\n")
        self.assertEqual(
            findings_of(lint.check_request_context,
                        os.path.join("src", "fleet", "x.cc"), text), [])

    def test_reqpath_ledger_itself_exempt(self):
        text = "  RequestContext ctx_;\n"
        self.assertEqual(
            findings_of(lint.check_request_context,
                        os.path.join("src", "telemetry", "reqpath", "request_path.h"),
                        text), [])

    def test_files_outside_src_exempt(self):
        text = "RequestContext ctx;\nvoid F(RequestContext ctx);\n"
        self.assertEqual(
            findings_of(lint.check_request_context,
                        os.path.join("tests", "x.cc"), text), [])


class DigestOrderRuleTest(unittest.TestCase):
    AUDIT_CC = os.path.join("src", "telemetry", "audit", "state_digest.cc")

    def test_flags_unordered_map_in_audit_layer(self):
        text = "std::unordered_map<std::string, DigestValue> subsystems_;\n"
        out = findings_of(lint.check_digest_order, self.AUDIT_CC, text)
        self.assertEqual(len(out), 1)
        self.assertEqual(out[0][2], "digest-order")
        self.assertIn("std::unordered_map", out[0][3])

    def test_flags_unordered_set_in_bisect_tool(self):
        text = "std::unordered_set<std::uint64_t> seen;\n"
        out = findings_of(lint.check_digest_order,
                          os.path.join("tools", "digest_bisect.cc"), text)
        self.assertEqual(len(out), 1)
        self.assertEqual(out[0][2], "digest-order")

    def test_ordered_containers_pass(self):
        text = ("std::map<std::string, DigestValue> subsystems_;\n"
                "std::vector<Row> rows;  // sorted by (epoch, name) before rendering\n")
        self.assertEqual(findings_of(lint.check_digest_order, self.AUDIT_CC, text), [])

    def test_comment_mentions_pass(self):
        text = "// never std::unordered_map here: dump order must be byte-stable\n"
        self.assertEqual(findings_of(lint.check_digest_order, self.AUDIT_CC, text), [])

    def test_other_code_paths_exempt(self):
        text = "std::unordered_map<std::uint64_t, Location> index_;\n"
        self.assertEqual(
            findings_of(lint.check_digest_order,
                        os.path.join("src", "cache", "flash_cache.h"), text), [])


class FormatRuleTest(unittest.TestCase):
    def test_flags_tabs_trailing_ws_long_lines(self):
        text = "\tint x;\nint y;  \n" + "z" * 101 + "\n"
        out = findings_of(lint.check_format, os.path.join("src", "core", "x.h"), text, text)
        self.assertEqual(sorted(f[3].split(" ")[0] for f in out),
                         ["line", "tab", "trailing"])

    def test_missing_final_newline(self):
        out = findings_of(lint.check_format, os.path.join("src", "core", "x.h"),
                          "int x;", "int x;")
        self.assertEqual(len(out), 1)
        self.assertIn("newline", out[0][3])

    def test_clean_file_passes(self):
        self.assertEqual(
            findings_of(lint.check_format, os.path.join("src", "core", "x.h"),
                        "int x;\n", "int x;\n"), [])


class CommentStringHelperTest(unittest.TestCase):
    def test_comment_and_string_are_masked(self):
        self.assertTrue(lint.is_comment_or_string("// std::chrono::system_clock", 10))
        self.assertTrue(lint.is_comment_or_string('auto s = "system_clock here";', 12))
        self.assertFalse(lint.is_comment_or_string("auto t = my_clock();", 10))


class SelfScanTest(unittest.TestCase):
    def test_repo_tree_is_clean(self):
        """The committed tree must pass its own lint (sans compiler probe)."""
        rc = lint.main(["--root", str(REPO_ROOT), "--skip-probe"])
        self.assertEqual(rc, 0)


if __name__ == "__main__":
    unittest.main()
