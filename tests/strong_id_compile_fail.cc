// Compile-fail suite for the strong ID / quantity types: each EXPECT_FAIL_n block is a
// distinct address-mixup bug that MUST be rejected by the compiler. The harness
// (tests/compile_fail_test.sh, registered as the strong_id_compile_fail ctest) compiles
// this file once per case with -DEXPECT_FAIL_n and asserts the compiler errors out, and
// once with no case defined and asserts it compiles cleanly (so a broken baseline cannot
// masquerade as passing failures).

#include <cstdint>

#include "src/core/strong_id.h"

namespace blockhead {

// Stand-in for a physical-op signature: argument order is enforced by type.
inline std::uint64_t Erase(ChannelId c, PlaneId p, BlockId b) {
  return c.value() + p.value() + b.value();
}

inline int Use() {
  ChannelId channel{1};
  PlaneId plane{2};
  BlockId block{3};
  Lba lba{4};
  Ppa ppa{5};
  Bytes bytes{6};
  Pages pages{7};
  ShardId shard{8};

#ifdef EXPECT_FAIL_1
  // Cross-ID assignment: a plane is not a channel.
  channel = plane;
#endif

#ifdef EXPECT_FAIL_2
  // Implicit construction from a raw integer: address spaces are opt-in.
  ChannelId implicit = 1;
  (void)implicit;
#endif

#ifdef EXPECT_FAIL_3
  // Swapped argument order: (plane, channel, block) instead of (channel, plane, block).
  (void)Erase(plane, channel, block);
#endif

#ifdef EXPECT_FAIL_4
  // Logical/physical confusion: an LBA is not a physical page address.
  lba = Lba{ppa};
#endif

#ifdef EXPECT_FAIL_5
  // Adding two addresses is meaningless (ID + distance and ID - ID are the only forms).
  (void)(lba + Lba{1});
#endif

#ifdef EXPECT_FAIL_6
  // Unit mismatch: bytes and pages only convert through PagesToBytes/BytesToPagesCeil.
  (void)(bytes + pages);
#endif

#ifdef EXPECT_FAIL_7
  // Narrowing brace-construction: a 64-bit value cannot silently become a 32-bit zone id.
  std::uint64_t wide = 1;
  (void)ZoneId{wide};
#endif

#ifdef EXPECT_FAIL_8
  // A zone id is not interchangeable with a flash block id, even explicitly.
  block = BlockId{ZoneId{1}};
#endif

#ifdef EXPECT_FAIL_9
  // A fleet shard is not a device LBA: routing indices must not leak into the data path.
  lba = Lba{shard};
#endif

  return static_cast<int>(Erase(channel, plane, block) + lba.value() + ppa.value() +
                          bytes.value() + pages.value() + shard.value());
}

}  // namespace blockhead
