// Tests for the per-request critical-path ledger (src/telemetry/reqpath/): watermark
// clipping and the attribution identity (sum of segment charges == end-to-end latency,
// exactly), scope semantics (outermost-wins, suppression, overrides, interference identity),
// the deterministic worst-k exemplar reservoir, SLO burn-rate math, and the identity held
// end-to-end across real stack configs — conventional SSD, host-FTL-on-ZNS, persistent
// queue, and a fleet with admission + rebalancing active.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/fleet/fleet.h"
#include "src/ftl/conventional_ssd.h"
#include "src/hostftl/host_ftl.h"
#include "src/queue/persistent_queue.h"
#include "src/telemetry/reqpath/request_path.h"
#include "src/telemetry/sink.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/timeline.h"
#include "src/util/rng.h"
#include "src/workload/workload.h"

namespace blockhead {
namespace {

FlashConfig SmallFlash() {
  FlashConfig c;
  c.geometry = FlashGeometry::Small();
  c.timing = FlashTiming::FastForTests();
  return c;
}

ZnsConfig DeviceConfig() {
  ZnsConfig z;
  z.max_active_zones = 6;
  z.max_open_zones = 6;
  return z;
}

std::vector<std::uint8_t> Pattern(std::uint32_t bytes, std::uint8_t tag) {
  std::vector<std::uint8_t> v(bytes);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<std::uint8_t>(tag + i);
  }
  return v;
}

std::uint64_t SegSum(const std::uint64_t (&seg)[kPathSegmentCount]) {
  std::uint64_t sum = 0;
  for (int s = 0; s < kPathSegmentCount; ++s) {
    sum += seg[s];
  }
  return sum;
}

// The attribution identity, checked at every granularity the ledger exposes: aggregate,
// per op class, and for the last completed request. All equalities are exact.
void ExpectAttributionIdentity(const RequestPathLedger& ledger) {
  EXPECT_EQ(ledger.TotalLatencyNs(), ledger.TotalSegmentNs());
  for (int op = 0; op < kReqOpCount; ++op) {
    const RequestPathLedger::OpTotals& t = ledger.op_totals(static_cast<ReqOp>(op));
    EXPECT_EQ(t.latency_ns, SegSum(t.seg_ns)) << ReqOpName(static_cast<ReqOp>(op));
  }
  if (ledger.completed() > 0) {
    const RequestPathLedger::Exemplar& last = ledger.last_completed();
    EXPECT_EQ(last.latency_ns, SegSum(last.seg_ns));
    EXPECT_EQ(last.latency_ns, last.completion - last.issue);
  }
  for (int op = 0; op < kReqOpCount; ++op) {
    for (const RequestPathLedger::Exemplar& e : ledger.exemplars(static_cast<ReqOp>(op))) {
      EXPECT_EQ(e.latency_ns, SegSum(e.seg_ns));
    }
  }
}

std::uint64_t Seg(const RequestPathLedger& ledger, ReqOp op, PathSegment s) {
  return ledger.op_totals(op).seg_ns[static_cast<int>(s)];
}

// --- Ledger unit tests --------------------------------------------------------------------

TEST(ReqPathTest, DisabledLedgerIsInertAndPublishesNothing) {
  RequestPathLedger ledger;
  {
    RequestPathLedger::RequestScope scope(&ledger, RequestContext{1, ReqOp::kRead}, 100);
    EXPECT_FALSE(scope.owns());
    ledger.ChargeInterval(100, 200, PathSegment::kFlashBusy);
    scope.Complete(300);
  }
  EXPECT_EQ(ledger.completed(), 0u);
  EXPECT_EQ(ledger.abandoned(), 0u);
  MetricRegistry registry;
  ledger.PublishTo(&registry);
  EXPECT_TRUE(registry.Snapshot().empty());  // Feature off == feature absent.
}

TEST(ReqPathTest, WatermarkClippingMakesSegmentsExclusiveAndResidualIsHostOther) {
  RequestPathLedger ledger;
  ledger.Enable();
  RequestPathLedger::RequestScope scope(&ledger, RequestContext{2, ReqOp::kRead}, 100);
  ASSERT_TRUE(scope.owns());
  ledger.ChargeInterval(100, 400, PathSegment::kFlashBusy);
  // Overlaps the first charge: only the part past the watermark lands (arrival order wins).
  ledger.ChargeInterval(300, 600, PathSegment::kGcStall);
  // Entirely behind the watermark: fully clipped away.
  ledger.ChargeInterval(150, 500, PathSegment::kDeviceQueue);
  scope.Complete(1000);

  EXPECT_EQ(ledger.completed(), 1u);
  EXPECT_EQ(Seg(ledger, ReqOp::kRead, PathSegment::kFlashBusy), 300u);
  EXPECT_EQ(Seg(ledger, ReqOp::kRead, PathSegment::kGcStall), 200u);
  EXPECT_EQ(Seg(ledger, ReqOp::kRead, PathSegment::kDeviceQueue), 0u);
  // The unclaimed [600, 1000) tail becomes the residual.
  EXPECT_EQ(Seg(ledger, ReqOp::kRead, PathSegment::kHostOther), 400u);
  ExpectAttributionIdentity(ledger);
}

TEST(ReqPathTest, ChargesTruncateAtHostVisibleCompletion) {
  // Write buffering acks before the program lands: a charge running past the completion
  // time must be truncated so the identity still holds at the host-visible latency.
  RequestPathLedger ledger;
  ledger.Enable();
  RequestPathLedger::RequestScope scope(&ledger, RequestContext{0, ReqOp::kWrite}, 100);
  ledger.ChargeInterval(100, 2000, PathSegment::kFlashBusy);
  scope.Complete(500);
  EXPECT_EQ(Seg(ledger, ReqOp::kWrite, PathSegment::kFlashBusy), 400u);
  EXPECT_EQ(Seg(ledger, ReqOp::kWrite, PathSegment::kHostOther), 0u);
  EXPECT_EQ(ledger.op_totals(ReqOp::kWrite).latency_ns, 400u);
  ExpectAttributionIdentity(ledger);
}

TEST(ReqPathTest, OutermostScopeWinsAndInnerScopesAreInert) {
  RequestPathLedger ledger;
  ledger.Enable();
  RequestPathLedger::RequestScope outer(&ledger, RequestContext{1, ReqOp::kRead}, 0);
  ASSERT_TRUE(outer.owns());
  {
    RequestPathLedger::RequestScope inner(&ledger, RequestContext{9, ReqOp::kWrite}, 10);
    EXPECT_FALSE(inner.owns());
    inner.Complete(20);  // No-op: the outer scope still owns the request.
  }
  EXPECT_EQ(ledger.completed(), 0u);
  outer.Complete(100);
  EXPECT_EQ(ledger.completed(), 1u);
  EXPECT_EQ(ledger.last_completed().ctx.tenant, 1u);  // The outer context was recorded.
  EXPECT_EQ(ledger.abandoned(), 0u);
}

TEST(ReqPathTest, DestructionWithoutCompleteCountsAsAbandoned) {
  RequestPathLedger ledger;
  ledger.Enable();
  {
    RequestPathLedger::RequestScope scope(&ledger, RequestContext{0, ReqOp::kRead}, 0);
    ledger.ChargeInterval(0, 50, PathSegment::kFlashBusy);
  }
  EXPECT_EQ(ledger.completed(), 0u);
  EXPECT_EQ(ledger.abandoned(), 1u);
  EXPECT_EQ(ledger.TotalLatencyNs(), 0u);  // Nothing recorded from the abandoned request.
  EXPECT_EQ(ledger.TotalSegmentNs(), 0u);
}

TEST(ReqPathTest, SuppressScopeKeepsBackgroundWorkOutOfTheLedger) {
  RequestPathLedger ledger;
  ledger.Enable();
  {
    RequestPathLedger::SuppressScope suppress(&ledger);
    RequestPathLedger::RequestScope scope(&ledger, RequestContext{0, ReqOp::kWrite}, 0);
    EXPECT_FALSE(scope.owns());  // Background copies never become host requests.
  }
  // Suppression lifts with the scope.
  RequestPathLedger::RequestScope scope(&ledger, RequestContext{0, ReqOp::kWrite}, 0);
  EXPECT_TRUE(scope.owns());
  scope.Complete(10);
  EXPECT_EQ(ledger.completed(), 1u);
  EXPECT_EQ(ledger.abandoned(), 0u);
}

TEST(ReqPathTest, OverrideScopesReclassifyAndInnermostWins) {
  RequestPathLedger ledger;
  ledger.Enable();
  RequestPathLedger::RequestScope scope(&ledger, RequestContext{0, ReqOp::kWrite}, 0);
  {
    RequestPathLedger::SegmentOverrideScope repl(&ledger, PathSegment::kReplication);
    ledger.ChargeInterval(0, 100, PathSegment::kFlashBusy);  // Reclassified.
    {
      RequestPathLedger::SegmentOverrideScope mig(&ledger, PathSegment::kMigrationStall);
      ledger.ChargeInterval(100, 150, PathSegment::kFlashBusy);  // Innermost wins.
    }
    ledger.ChargeInterval(150, 250, PathSegment::kDeviceQueue);
  }
  ledger.ChargeInterval(250, 300, PathSegment::kFlashBusy);  // Override popped.
  scope.Complete(300);
  EXPECT_EQ(Seg(ledger, ReqOp::kWrite, PathSegment::kReplication), 200u);
  EXPECT_EQ(Seg(ledger, ReqOp::kWrite, PathSegment::kMigrationStall), 50u);
  EXPECT_EQ(Seg(ledger, ReqOp::kWrite, PathSegment::kFlashBusy), 50u);
  EXPECT_EQ(Seg(ledger, ReqOp::kWrite, PathSegment::kDeviceQueue), 0u);
  ExpectAttributionIdentity(ledger);
}

TEST(ReqPathTest, InterferenceChargesCarryCauseLayerAndTrackIdentity) {
  RequestPathLedger ledger;
  ledger.Enable();
  RequestPathLedger::RequestScope scope(&ledger, RequestContext{3, ReqOp::kRead}, 0);
  ledger.ChargeInterval(0, 100, PathSegment::kFlashBusy);
  ledger.ChargeInterference(100, 400, WriteCause::kDeviceGC, StackLayer::kFtl, "dev.gc");
  // A second, shorter interferer: the exemplar keeps the longest single interval.
  ledger.ChargeInterference(400, 500, WriteCause::kBlockEmulationReclaim,
                            StackLayer::kHostFtl, "hostftl.gc");
  scope.Complete(500);

  EXPECT_EQ(Seg(ledger, ReqOp::kRead, PathSegment::kGcStall), 300u);
  EXPECT_EQ(Seg(ledger, ReqOp::kRead, PathSegment::kCompactionStall), 100u);
  EXPECT_EQ(ledger.interference_ns(WriteCause::kDeviceGC, StackLayer::kFtl), 300u);
  EXPECT_EQ(
      ledger.interference_ns(WriteCause::kBlockEmulationReclaim, StackLayer::kHostFtl),
      100u);

  const RequestPathLedger::Exemplar& last = ledger.last_completed();
  EXPECT_EQ(last.top_cause, WriteCause::kDeviceGC);
  EXPECT_EQ(last.top_layer, StackLayer::kFtl);
  EXPECT_EQ(last.top_interference_ns, 300u);
  EXPECT_EQ(last.interferer_track, "dev.gc");
  EXPECT_EQ(last.interferer_begin, 100u);
  EXPECT_EQ(last.interferer_end, 400u);
  ExpectAttributionIdentity(ledger);
}

TEST(ReqPathTest, InterferenceScopeTagsOrdinaryChargesAsInterference) {
  // Host-side reclaim runs its flash ops as ordinary host-class charges inside the victim's
  // request; an open InterferenceScope must reroute them to the stall segment with identity.
  RequestPathLedger ledger;
  ledger.Enable();
  RequestPathLedger::RequestScope scope(&ledger, RequestContext{0, ReqOp::kWrite}, 0);
  {
    RequestPathLedger::InterferenceScope gc(&ledger, WriteCause::kBlockEmulationReclaim,
                                            StackLayer::kHostFtl, "hostftl.gc");
    ledger.ChargeInterval(0, 250, PathSegment::kFlashBusy);
  }
  ledger.ChargeInterval(250, 300, PathSegment::kFlashBusy);
  scope.Complete(300);
  EXPECT_EQ(Seg(ledger, ReqOp::kWrite, PathSegment::kCompactionStall), 250u);
  EXPECT_EQ(Seg(ledger, ReqOp::kWrite, PathSegment::kFlashBusy), 50u);
  EXPECT_EQ(
      ledger.interference_ns(WriteCause::kBlockEmulationReclaim, StackLayer::kHostFtl),
      250u);
  EXPECT_EQ(ledger.last_completed().interferer_track, "hostftl.gc");
  ExpectAttributionIdentity(ledger);
}

TEST(ReqPathTest, DelegatedLedgerChargesLandOnTheRoot) {
  // The fleet delegates device ledgers to the fleet-level one: scopes and charges made
  // through the device ledger must attribute to the root's active request.
  RequestPathLedger root;
  RequestPathLedger device;
  root.Enable();
  device.DelegateTo(&root);

  RequestPathLedger::RequestScope scope(&device, RequestContext{5, ReqOp::kRead}, 0);
  ASSERT_TRUE(scope.owns());
  device.ChargeInterval(0, 80, PathSegment::kFlashBusy);
  EXPECT_TRUE(root.InRequest());
  scope.Complete(80);

  EXPECT_EQ(root.completed(), 1u);
  EXPECT_EQ(device.completed(), 0u);
  EXPECT_EQ(Seg(root, ReqOp::kRead, PathSegment::kFlashBusy), 80u);
  EXPECT_EQ(root.last_completed().ctx.tenant, 5u);

  device.DelegateTo(nullptr);  // Restored independence: the device ledger is disabled again.
  RequestPathLedger::RequestScope local(&device, RequestContext{0, ReqOp::kRead}, 0);
  EXPECT_FALSE(local.owns());
}

TEST(ReqPathTest, ExemplarReservoirKeepsWorstKDeterministically) {
  RequestPathLedger ledger;
  ReqPathConfig config;
  config.exemplars_per_op = 2;
  ledger.Enable(config);
  auto complete_one = [&ledger](SimTime issue, std::uint64_t latency) {
    RequestPathLedger::RequestScope scope(&ledger, RequestContext{0, ReqOp::kRead}, issue);
    scope.Complete(issue + latency);
  };
  complete_one(0, 100);
  complete_one(1000, 500);   // seq 1
  complete_one(2000, 300);
  complete_one(3000, 500);   // seq 3: ties with seq 1; the earlier request ranks first.

  const std::vector<RequestPathLedger::Exemplar>& worst = ledger.exemplars(ReqOp::kRead);
  ASSERT_EQ(worst.size(), 2u);
  EXPECT_EQ(worst[0].latency_ns, 500u);
  EXPECT_EQ(worst[0].seq, 1u);
  EXPECT_EQ(worst[1].latency_ns, 500u);
  EXPECT_EQ(worst[1].seq, 3u);

  complete_one(4000, 600);  // Evicts the later 500.
  ASSERT_EQ(worst.size(), 2u);
  EXPECT_EQ(worst[0].latency_ns, 600u);
  EXPECT_EQ(worst[1].seq, 1u);
}

TEST(ReqPathTest, SloBurnRatesAndBreachFollowTheErrorBudget) {
  RequestPathLedger ledger;
  ledger.Enable();
  SloObjective slo;
  slo.name = "t0.read.p50";
  slo.tenant = 0;
  slo.op = ReqOp::kRead;
  slo.quantile = 0.5;  // Error budget = 0.5: burn = 2 * violation fraction.
  slo.target_ns = 100;
  slo.window = 10 * kMicrosecond;
  ledger.AddObjective(slo);

  auto complete_one = [&ledger](SimTime issue, std::uint64_t latency) {
    RequestPathLedger::RequestScope scope(&ledger, RequestContext{0, ReqOp::kRead}, issue);
    scope.Complete(issue + latency);
  };
  // 1 violation in 4: fraction 0.25, burn 0.5 — inside budget.
  complete_one(1000, 50);
  complete_one(2000, 60);
  complete_one(3000, 70);
  complete_one(4000, 150);
  {
    const std::vector<RequestPathLedger::SloSnapshot> snaps = ledger.SloSnapshots();
    ASSERT_EQ(snaps.size(), 1u);
    EXPECT_EQ(snaps[0].total, 4u);
    EXPECT_EQ(snaps[0].violations, 1u);
    EXPECT_NEAR(snaps[0].burn_short, 0.5, 1e-9);
    EXPECT_FALSE(snaps[0].breached);
  }
  // Push to 5 violations in 8: burn 1.25 on both windows — breached.
  complete_one(5000, 150);
  complete_one(6000, 150);
  complete_one(7000, 150);
  complete_one(8000, 150);
  {
    const std::vector<RequestPathLedger::SloSnapshot> snaps = ledger.SloSnapshots();
    ASSERT_EQ(snaps.size(), 1u);
    EXPECT_EQ(snaps[0].total, 8u);
    EXPECT_EQ(snaps[0].violations, 5u);
    EXPECT_NEAR(snaps[0].burn_short, 1.25, 1e-9);
    EXPECT_NEAR(snaps[0].burn_long, 1.25, 1e-9);
    EXPECT_TRUE(snaps[0].breached);
    EXPECT_GT(snaps[0].current_ns, 0u);
  }
  // The report serializes the same numbers; re-adding the objective by name replaces it.
  const std::string report = ledger.SloReportJson();
  EXPECT_NE(report.find("\"name\":\"t0.read.p50\""), std::string::npos);
  EXPECT_NE(report.find("\"breached\":true"), std::string::npos);
  ledger.AddObjective(slo);
  EXPECT_EQ(ledger.SloSnapshots().size(), 1u);
}

TEST(ReqPathTest, PublishToEmitsSegmentTenantAndInterferenceRows) {
  RequestPathLedger ledger;
  ledger.Enable();
  {
    RequestPathLedger::RequestScope scope(&ledger, RequestContext{7, ReqOp::kRead}, 0);
    ledger.ChargeInterval(0, 60, PathSegment::kFlashBusy);
    ledger.ChargeInterference(60, 100, WriteCause::kDeviceGC, StackLayer::kFtl, "dev.gc");
    scope.Complete(100);
  }
  MetricRegistry registry;
  ledger.PublishTo(&registry);
  EXPECT_EQ(registry.GetCounter("reqpath.completed")->value(), 1u);
  EXPECT_EQ(registry.GetCounter("reqpath.read.seg.flash_busy_ns")->value(), 60u);
  EXPECT_EQ(registry.GetCounter("reqpath.read.seg.gc_stall_ns")->value(), 40u);
  EXPECT_EQ(registry.GetCounter("reqpath.interference.device_gc.ftl_ns")->value(), 40u);
  EXPECT_EQ(registry.GetHistogram("reqpath.tenant7.read.latency_ns")->count(), 1u);
}

TEST(ReqPathTest, ExemplarTimelineEmitsVictimSlicesAndFlowArrows) {
  Telemetry telemetry;
  telemetry.timeline.Enable();
  telemetry.reqpath.Enable();
  {
    RequestPathLedger::RequestScope scope(&telemetry.reqpath,
                                          RequestContext{1, ReqOp::kRead}, 100);
    telemetry.reqpath.ChargeInterference(150, 400, WriteCause::kDeviceGC, StackLayer::kFtl,
                                         "dev.gc");
    scope.Complete(500);
  }
  telemetry.reqpath.EmitExemplarTimeline(&telemetry.timeline);
  EXPECT_EQ(telemetry.timeline.flows_recorded(), 1u);
  const std::string trace = telemetry.timeline.ExportChromeTrace();
  EXPECT_NE(trace.find("reqpath.exemplar.read"), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"s\""), std::string::npos);  // Flow arrow start.
  EXPECT_NE(trace.find("\"cat\":\"reqpath\""), std::string::npos);
}

// --- The identity across real stack configurations ----------------------------------------

TEST(ReqPathStackTest, ConventionalSsdHoldsTheIdentityUnderGc) {
  Telemetry tel;
  ConventionalSsd ssd(SmallFlash(), FtlConfig{});
  ssd.AttachTelemetry(&tel, "conv");
  tel.reqpath.Enable();

  SimTime t = 0;
  const std::uint64_t span = ssd.num_blocks() / 4;
  std::uint64_t ops = 0;
  // Heavy overwrites in a narrow range force GC under the measured writes.
  for (int round = 0; round < 6; ++round) {
    for (std::uint64_t b = 0; b < span; ++b) {
      auto w = ssd.WriteBlocks(Lba{b}, 1, t, Pattern(4096, static_cast<std::uint8_t>(b)));
      ASSERT_TRUE(w.ok());
      t = w.value();
      ops++;
    }
  }
  std::vector<std::uint8_t> out(4096);
  for (std::uint64_t b = 0; b < span; ++b) {
    auto r = ssd.ReadBlocks(Lba{b}, 1, t, out);
    ASSERT_TRUE(r.ok());
    t = r.value();
    ops++;
  }
  EXPECT_EQ(tel.reqpath.completed(), ops);
  EXPECT_EQ(tel.reqpath.abandoned(), 0u);
  EXPECT_GT(Seg(tel.reqpath, ReqOp::kWrite, PathSegment::kFlashBusy), 0u);
  ExpectAttributionIdentity(tel.reqpath);
}

TEST(ReqPathStackTest, HostFtlOnZnsHoldsTheIdentityUnderReclaim) {
  Telemetry tel;
  ZnsDevice dev(SmallFlash(), DeviceConfig());
  HostFtlBlockDevice ftl(&dev, HostFtlConfig{});
  dev.AttachTelemetry(&tel, "zns");  // Shared bundle: zns-level waits charge the same ledger.
  ftl.AttachTelemetry(&tel, "hostftl");
  tel.reqpath.Enable();

  // Full-space churn: enough overwrite pressure that reclaim runs forced, inside the
  // measured writes (the same recipe the hostftl churn test uses to guarantee GC).
  Rng rng(1);
  SimTime t = 0;
  const std::uint64_t n = ftl.num_blocks();
  std::uint64_t ops = 0;
  for (std::uint64_t i = 0; i < 3 * n; ++i) {
    const std::uint64_t lba = rng.NextBelow(n);
    auto w = ftl.WriteBlocks(Lba{lba}, 1, t, Pattern(4096, static_cast<std::uint8_t>(i)));
    ASSERT_TRUE(w.ok()) << w.status().ToString() << " at op " << i;
    t = w.value();
    ops++;
  }
  std::vector<std::uint8_t> out(4096);
  for (std::uint64_t b = 0; b < n; b += 7) {
    auto r = ftl.ReadBlocks(Lba{b}, 1, t, out);
    ASSERT_TRUE(r.ok());
    t = r.value();
    ops++;
  }
  ASSERT_GT(ftl.stats().gc_cycles, 0u) << "churn must trigger host reclaim";
  EXPECT_EQ(tel.reqpath.completed(), ops);
  ExpectAttributionIdentity(tel.reqpath);
  // Reclaim ran inside measured writes and was attributed with its identity.
  EXPECT_GT(
      tel.reqpath.interference_ns(WriteCause::kBlockEmulationReclaim, StackLayer::kHostFtl),
      0u);
}

TEST(ReqPathStackTest, PersistentQueueHoldsTheIdentityWithTenantTagging) {
  Telemetry tel;
  ZnsDevice dev(SmallFlash(), DeviceConfig());
  dev.AttachTelemetry(&tel, "zns");
  QueueConfig qc;
  qc.tenant = 4;
  PersistentQueue q(&dev, qc);
  tel.reqpath.Enable();

  SimTime t = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    auto e = q.Enqueue(Pattern(4096, static_cast<std::uint8_t>(i)), t);
    ASSERT_TRUE(e.ok());
    t = e.value();
  }
  std::vector<std::uint8_t> out;
  for (std::uint64_t i = 0; i < 64; ++i) {
    auto d = q.Dequeue(out, t);
    ASSERT_TRUE(d.ok());
    t = d.value().completion;
  }
  EXPECT_EQ(tel.reqpath.completed(), 128u);
  EXPECT_EQ(tel.reqpath.op_totals(ReqOp::kWrite).count, 64u);
  EXPECT_EQ(tel.reqpath.op_totals(ReqOp::kRead).count, 64u);
  EXPECT_EQ(tel.reqpath.last_completed().ctx.tenant, 4u);
  ExpectAttributionIdentity(tel.reqpath);
}

Fleet BuildActiveFleet(FleetConfig* out_cfg) {
  FleetConfig cfg = FleetConfig::Mixed(4, 0.5, 13);
  // Aggressive rebalancing so wear migration is live during the measured ops.
  cfg.rebalancer.enabled = true;
  cfg.rebalancer.plan_interval = 1 * kMillisecond;
  cfg.rebalancer.skew_threshold = 1.01;
  cfg.rebalancer.min_erases = 8;
  *out_cfg = cfg;
  return Fleet(cfg);
}

FleetRunResult DriveFleet(Fleet& fleet, std::uint64_t ops) {
  RandomWorkloadConfig wl;
  wl.lba_space = fleet.num_pages();
  wl.read_fraction = 0.3;
  wl.io_pages = 4;
  wl.distribution = AddressDistribution::kZipfian;
  wl.zipf_theta = 0.99;  // ZipfGenerator contract: theta in (0, 1).
  wl.seed = 55;
  RandomWorkload gen(wl);
  FleetDriverOptions opts;
  opts.ops = ops;
  opts.step_interval = 4;
  opts.tenant = 2;
  return RunFleetClosedLoop(fleet, gen, opts);
}

TEST(ReqPathStackTest, FleetWithRebalancingHoldsTheIdentity) {
  Telemetry tel;
  FleetConfig cfg;
  Fleet fleet = BuildActiveFleet(&cfg);
  fleet.AttachTelemetry(&tel, "fleet");
  tel.reqpath.Enable();

  const FleetRunResult result = DriveFleet(fleet, 16000);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  // The config must actually exercise migration, or this test proves less than it claims.
  EXPECT_GE(fleet.stats().migrations_completed, 1u);
  EXPECT_EQ(tel.reqpath.completed() + tel.reqpath.abandoned(),
            result.reads + result.writes + result.trims + result.shed_drops);
  ExpectAttributionIdentity(tel.reqpath);
  // Device-internal charges reached the fleet ledger through delegation.
  EXPECT_GT(Seg(tel.reqpath, ReqOp::kRead, PathSegment::kFlashBusy), 0u);
  EXPECT_GT(Seg(tel.reqpath, ReqOp::kWrite, PathSegment::kReplication), 0u);
}

TEST(ReqPathStackTest, LedgerOnDoesNotPerturbSimResultsAndDumpsAreByteIdentical) {
  // Same seed, ledger off vs. on: every SimTime-domain result must be identical (the
  // observer does not disturb the experiment). And two ledger-on runs must produce
  // byte-identical exemplar dumps and SLO reports.
  auto run = [](bool with_ledger, std::string* exemplars, std::string* slo_report) {
    Telemetry tel;
    FleetConfig cfg;
    Fleet fleet = BuildActiveFleet(&cfg);
    fleet.AttachTelemetry(&tel, "fleet");
    if (with_ledger) {
      tel.reqpath.Enable();
      SloObjective slo;
      slo.name = "t2.read.p99";
      slo.tenant = 2;
      slo.op = ReqOp::kRead;
      slo.target_ns = 500 * kMicrosecond;
      tel.reqpath.AddObjective(slo);
    }
    const FleetRunResult result = DriveFleet(fleet, 8000);
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    if (exemplars != nullptr) {
      *exemplars = tel.reqpath.DumpExemplarsJson();
    }
    if (slo_report != nullptr) {
      *slo_report = tel.reqpath.SloReportJson();
    }
    std::string blob;
    blob += std::to_string(result.end) + "|" + std::to_string(result.reads) + "|" +
            std::to_string(result.writes) + "|" + std::to_string(result.sheds) + "|" +
            std::to_string(result.read_latency.P99()) + "|" +
            std::to_string(result.write_latency.P99()) + "\n";
    std::string metrics;  // Snapshot() runs the registered providers (fleet publish).
    JsonLinesSink().Render("reqpath_test", tel.registry.Snapshot(), &metrics);
    // Strip the ledger's own rows: everything else must not depend on the ledger.
    for (std::size_t pos = 0; pos < metrics.size();) {
      const std::size_t eol = metrics.find('\n', pos);
      const std::string line = metrics.substr(pos, eol - pos);
      if (line.find("\"metric\":\"reqpath.") == std::string::npos) {
        blob += line + "\n";
      }
      pos = (eol == std::string::npos) ? metrics.size() : eol + 1;
    }
    return blob;
  };

  std::string exemplars_a;
  std::string exemplars_b;
  std::string slo_a;
  std::string slo_b;
  const std::string off = run(false, nullptr, nullptr);
  const std::string on_a = run(true, &exemplars_a, &slo_a);
  const std::string on_b = run(true, &exemplars_b, &slo_b);
  EXPECT_EQ(off, on_a);  // Observer effect: none.
  EXPECT_EQ(on_a, on_b);
  EXPECT_FALSE(exemplars_a.empty());
  EXPECT_EQ(exemplars_a, exemplars_b);  // Deterministic exemplar capture.
  EXPECT_EQ(slo_a, slo_b);              // Deterministic SLO report.
  EXPECT_NE(exemplars_a.find("\"op\":\"read\""), std::string::npos);
  EXPECT_NE(slo_a.find("\"name\":\"t2.read.p99\""), std::string::npos);
}

}  // namespace
}  // namespace blockhead
