// Tests for the workload generators and the closed-loop driver.

#include <gtest/gtest.h>

#include "src/ftl/conventional_ssd.h"
#include "src/workload/trace.h"
#include "src/workload/workload.h"

namespace blockhead {
namespace {

FlashConfig SmallFlash() {
  FlashConfig c;
  c.geometry = FlashGeometry::Small();
  c.timing = FlashTiming::FastForTests();
  c.store_data = false;
  return c;
}

TEST(RandomWorkloadTest, RespectsLbaSpaceAndMix) {
  RandomWorkloadConfig cfg;
  cfg.lba_space = 1000;
  cfg.read_fraction = 0.3;
  cfg.io_pages = 4;
  RandomWorkload gen(cfg);
  int reads = 0;
  for (int i = 0; i < 10000; ++i) {
    const IoRequest req = gen.Next();
    EXPECT_LE(req.lba + req.pages, 1000u);
    EXPECT_EQ(req.pages, 4u);
    reads += req.type == IoType::kRead ? 1 : 0;
  }
  EXPECT_NEAR(reads / 10000.0, 0.3, 0.03);
}

TEST(RandomWorkloadTest, ZipfianSkewsAddresses) {
  RandomWorkloadConfig cfg;
  cfg.lba_space = 10000;
  cfg.distribution = AddressDistribution::kZipfian;
  cfg.zipf_theta = 0.99;
  RandomWorkload gen(cfg);
  int low = 0;
  for (int i = 0; i < 10000; ++i) {
    if (gen.Next().lba < 100) {
      ++low;
    }
  }
  EXPECT_GT(low, 5000);
}

TEST(SequentialWorkloadTest, WrapsAround) {
  SequentialWorkload gen(100, 8, IoType::kWrite);
  for (int i = 0; i < 12; ++i) {
    const IoRequest req = gen.Next();
    EXPECT_EQ(req.lba, static_cast<std::uint64_t>((i % 12) * 8) % 96);
    EXPECT_LE(req.lba + req.pages, 100u);
  }
}

TEST(DriverTest, ClosedLoopCollectsLatencies) {
  ConventionalSsd ssd(SmallFlash(), FtlConfig{});
  RandomWorkloadConfig cfg;
  cfg.lba_space = ssd.num_blocks();
  cfg.read_fraction = 0.5;
  cfg.seed = 7;
  RandomWorkload gen(cfg);
  DriverOptions opts;
  opts.ops = 2000;
  const RunResult result = RunClosedLoop(ssd, gen, opts);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.reads + result.writes, 2000u);
  EXPECT_GT(result.reads, 800u);
  EXPECT_GT(result.read_latency.count(), 0u);
  EXPECT_GT(result.write_latency.count(), 0u);
  EXPECT_GT(result.elapsed(), 0u);
  EXPECT_GT(result.Iops(), 0.0);
  EXPECT_GT(result.TotalMiBps(), 0.0);
}

TEST(DriverTest, DeeperQueueRaisesThroughput) {
  auto throughput = [](std::uint32_t qd) {
    ConventionalSsd ssd(SmallFlash(), FtlConfig{});
    RandomWorkloadConfig cfg;
    cfg.lba_space = ssd.num_blocks();
    cfg.read_fraction = 1.0;  // Reads: no buffering effects.
    cfg.seed = 9;
    RandomWorkload gen(cfg);
    // Prime some data so reads touch flash; start measuring well after the buffered write
    // backlog has drained so only read behaviour is timed.
    auto fill_done = SequentialFill(ssd, 0.5, 0);
    EXPECT_TRUE(fill_done.ok());
    DriverOptions opts;
    opts.ops = 4000;
    opts.queue_depth = qd;
    opts.start_time = fill_done.value_or(0) + kMillisecond;
    return RunClosedLoop(ssd, gen, opts).TotalMiBps();
  };
  EXPECT_GT(throughput(8), 1.5 * throughput(1));
}

TEST(DriverTest, MaintenanceHookRuns) {
  ConventionalSsd ssd(SmallFlash(), FtlConfig{});
  RandomWorkloadConfig cfg;
  cfg.lba_space = ssd.num_blocks();
  RandomWorkload gen(cfg);
  int calls = 0;
  DriverOptions opts;
  opts.ops = 100;
  opts.maintenance_interval = 10;
  opts.maintenance_hook = [&calls](SimTime, bool) { ++calls; };
  (void)RunClosedLoop(ssd, gen, opts);
  EXPECT_EQ(calls, 10);
}

TEST(DriverTest, SequentialFillWritesRequestedFraction) {
  ConventionalSsd ssd(SmallFlash(), FtlConfig{});
  auto done = SequentialFill(ssd, 0.25, 0);
  ASSERT_TRUE(done.ok());
  EXPECT_NEAR(static_cast<double>(ssd.ftl_stats().host_pages_written),
              0.25 * static_cast<double>(ssd.num_blocks()),
              static_cast<double>(ssd.num_blocks()) * 0.01);
}


TEST(OpenLoopTest, QueueingAppearsAtHighLoad) {
  // Open loop: at low offered load latencies are service-time only; near saturation they
  // grow with queueing delay (the hockey stick A3 sweeps).
  auto p99_at = [](double ops_per_sec) {
    ConventionalSsd ssd(SmallFlash(), FtlConfig{});
    (void)SequentialFill(ssd, 0.5, 0);
    RandomWorkloadConfig cfg;
    cfg.lba_space = ssd.num_blocks();
    cfg.read_fraction = 1.0;
    cfg.seed = 3;
    RandomWorkload gen(cfg);
    DriverOptions opts;
    opts.ops = 20000;
    opts.start_time = 1 * kSecond;
    return RunOpenLoop(ssd, gen, opts, ops_per_sec).read_latency.Percentile(0.99);
  };
  // FastForTests read = 10ns + 1ns xfer on 4 planes: capacity ~hundreds of Mops/s; compare a
  // trivial load against one near the service rate.
  EXPECT_GT(p99_at(300.0e6), 2 * p99_at(1.0e6));
}

TEST(OpenLoopTest, CountsAndRatesReported) {
  ConventionalSsd ssd(SmallFlash(), FtlConfig{});
  RandomWorkloadConfig cfg;
  cfg.lba_space = ssd.num_blocks();
  cfg.read_fraction = 0.5;
  cfg.seed = 4;
  RandomWorkload gen(cfg);
  DriverOptions opts;
  opts.ops = 5000;
  const RunResult result = RunOpenLoop(ssd, gen, opts, 100000.0);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.reads + result.writes, 5000u);
  // Poisson arrivals at 100k/s for 5000 ops: elapsed ~50ms.
  EXPECT_NEAR(static_cast<double>(result.elapsed()) / kMillisecond, 50.0, 15.0);
}

TEST(TraceTest, ParseFormatRoundTrip) {
  const char* text =
      "# header comment\n"
      "W,100,8\n"
      "R,42,1\n"
      "\n"
      "T,7,4\n";
  auto parsed = ParseTrace(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ((*parsed)[0].type, IoType::kWrite);
  EXPECT_EQ((*parsed)[0].lba, 100u);
  EXPECT_EQ((*parsed)[0].pages, 8u);
  EXPECT_EQ((*parsed)[1].type, IoType::kRead);
  EXPECT_EQ((*parsed)[2].type, IoType::kTrim);
  auto reparsed = ParseTrace(FormatTrace(parsed.value()));
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->size(), 3u);
  EXPECT_EQ((*reparsed)[2].pages, 4u);
}

TEST(TraceTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseTrace("X,1,1\n").ok());
  EXPECT_FALSE(ParseTrace("W,abc,1\n").ok());
  EXPECT_FALSE(ParseTrace("W,1,0\n").ok());
  EXPECT_FALSE(ParseTrace("W,1\n").ok());
  const Status s = ParseTrace("W,1,1\nW,2\n").status();
  EXPECT_NE(s.message().find("line 2"), std::string::npos);
}

TEST(TraceTest, ReplayAndRecord) {
  auto parsed = ParseTrace("W,0,1\nW,1,1\nR,0,1\n");
  ASSERT_TRUE(parsed.ok());
  TraceWorkload trace(parsed.value());
  RecordingWorkload recorder(&trace);
  ConventionalSsd ssd(SmallFlash(), FtlConfig{});
  DriverOptions opts;
  opts.ops = 6;  // Two passes through the 3-op trace.
  const RunResult result = RunClosedLoop(ssd, recorder, opts);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.writes, 4u);
  EXPECT_EQ(result.reads, 2u);
  ASSERT_EQ(recorder.recorded().size(), 6u);
  EXPECT_EQ(recorder.recorded()[3].lba, 0u);  // Wrap-around.
}


TEST(TraceTest, EmptyTraceReplaysAsNoOp) {
  auto parsed = ParseTrace("# only comments and blanks\n\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->empty());
  TraceWorkload trace(parsed.value());
  EXPECT_EQ(trace.Next().pages, 0u);  // Zero-length read: the defined no-op.
  ConventionalSsd ssd(SmallFlash(), FtlConfig{});
  DriverOptions opts;
  opts.ops = 5;
  const RunResult result = RunClosedLoop(ssd, trace, opts);
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.writes, 0u);
  EXPECT_EQ(result.bytes_read, 0u);
  EXPECT_EQ(result.bytes_written, 0u);
}

TEST(TraceTest, TimedParseAndNormalizeOutOfOrderTimestamps) {
  auto parsed = ParseTimedTrace("W,0,1,100\nW,1,1,50\nR,0,1,200\nT,2,1\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 4u);
  EXPECT_EQ((*parsed)[0].at, 100u);
  EXPECT_EQ((*parsed)[1].at, 50u);   // Out of order as recorded.
  EXPECT_EQ((*parsed)[3].at, 0u);    // Three-field line: no timestamp.
  const std::size_t adjusted = NormalizeTraceTimes(&parsed.value());
  EXPECT_EQ(adjusted, 2u);           // The 50 and the trailing 0 are lifted.
  EXPECT_EQ((*parsed)[1].at, 100u);  // Lifted to the running maximum...
  EXPECT_EQ((*parsed)[2].at, 200u);  // ...later records untouched...
  EXPECT_EQ((*parsed)[3].at, 200u);  // ...and the sequence ends nondecreasing.
  // Round-trips through the four-field format.
  auto again = ParseTimedTrace(FormatTimedTrace(parsed.value()));
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->size(), 4u);
  EXPECT_EQ((*again)[3].at, 200u);
  EXPECT_EQ((*again)[2].io.type, IoType::kRead);
  // A trailing comma without a value (or a non-numeric timestamp) is malformed.
  EXPECT_FALSE(ParseTimedTrace("W,0,1,\n").ok());
  EXPECT_FALSE(ParseTimedTrace("W,0,1,xyz\n").ok());
}

TEST(TraceTest, ClampToCapacityDropsAndTruncatesWithDefinedBehavior) {
  auto parsed = ParseTrace("W,0,4\nW,98,4\nR,200,2\nW,99,1\nR,100,1\n");
  ASSERT_TRUE(parsed.ok());
  const TraceClampStats stats = ClampTraceToCapacity(&parsed.value(), 100);
  EXPECT_EQ(stats.dropped, 2u);    // R,200,2 and R,100,1 start at/past the capacity.
  EXPECT_EQ(stats.truncated, 1u);  // W,98,4 shrinks to the in-range 2-page prefix.
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ((*parsed)[1].lba, 98u);
  EXPECT_EQ((*parsed)[1].pages, 2u);
  EXPECT_EQ((*parsed)[2].lba, 99u);
  // The clamped trace replays cleanly against a device no larger than the clamp target.
  ConventionalSsd ssd(SmallFlash(), FtlConfig{});
  ASSERT_GE(ssd.num_blocks(), 100u);
  TraceWorkload trace(parsed.value());
  DriverOptions opts;
  opts.ops = parsed->size();
  const RunResult result = RunClosedLoop(ssd, trace, opts);
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.writes, 3u);
}

}  // namespace
}  // namespace blockhead
