// Tests for the ZenFS-style zoned filesystem: file CRUD, append/read across page and extent
// boundaries, sync/durability semantics, lifetime-hint placement, zone compaction, crash
// recovery via the metadata journal.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/util/rng.h"
#include "src/zonefile/zone_file_system.h"

namespace blockhead {
namespace {

FlashConfig SmallFlash() {
  FlashConfig c;
  c.geometry = FlashGeometry::Small();
  c.timing = FlashTiming::FastForTests();
  return c;
}

ZnsConfig DeviceConfig() {
  ZnsConfig z;
  z.max_active_zones = 10;
  z.max_open_zones = 10;
  return z;
}

std::vector<std::uint8_t> Bytes(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> v(n);
  Rng rng(seed);
  for (auto& b : v) {
    b = static_cast<std::uint8_t>(rng.Next());
  }
  return v;
}

class ZoneFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = std::make_unique<ZnsDevice>(SmallFlash(), DeviceConfig());
    auto fs = ZoneFileSystem::Format(device_.get(), ZoneFileConfig{}, 0);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    fs_ = std::move(fs).value();
  }

  std::unique_ptr<ZnsDevice> device_;
  std::unique_ptr<ZoneFileSystem> fs_;
};

TEST_F(ZoneFileTest, CreateExistsDelete) {
  EXPECT_FALSE(fs_->Exists("a"));
  ASSERT_TRUE(fs_->Create("a", Lifetime::kShort, 0).ok());
  EXPECT_TRUE(fs_->Exists("a"));
  EXPECT_EQ(fs_->Create("a", Lifetime::kShort, 0).code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(fs_->FileHint("a").value(), Lifetime::kShort);
  EXPECT_EQ(fs_->FileSize("a").value(), 0u);
  ASSERT_TRUE(fs_->Delete("a", 0).ok());
  EXPECT_FALSE(fs_->Exists("a"));
  EXPECT_EQ(fs_->Delete("a", 0).code(), ErrorCode::kNotFound);
  EXPECT_EQ(fs_->FileSize("a").code(), ErrorCode::kNotFound);
}

TEST_F(ZoneFileTest, ListFiles) {
  ASSERT_TRUE(fs_->Create("kiwi", Lifetime::kNone, 0).ok());
  ASSERT_TRUE(fs_->Create("apple", Lifetime::kNone, 0).ok());
  const auto files = fs_->ListFiles();
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0], "apple");
  EXPECT_EQ(files[1], "kiwi");
}

TEST_F(ZoneFileTest, AppendAndReadSmall) {
  ASSERT_TRUE(fs_->Create("f", Lifetime::kMedium, 0).ok());
  const auto data = Bytes(100, 1);
  ASSERT_TRUE(fs_->Append("f", data, 0).ok());
  EXPECT_EQ(fs_->FileSize("f").value(), 100u);
  std::vector<std::uint8_t> out(100);
  ASSERT_TRUE(fs_->Read("f", 0, out, 0).ok());
  EXPECT_EQ(out, data);  // Served from the in-memory tail.
}

TEST_F(ZoneFileTest, AppendAcrossPageBoundaries) {
  ASSERT_TRUE(fs_->Create("f", Lifetime::kMedium, 0).ok());
  const auto data = Bytes(3 * 4096 + 123, 2);
  ASSERT_TRUE(fs_->Append("f", data, 0).ok());
  EXPECT_EQ(fs_->FileSize("f").value(), data.size());
  std::vector<std::uint8_t> out(data.size());
  ASSERT_TRUE(fs_->Read("f", 0, out, 0).ok());
  EXPECT_EQ(out, data);
  // Partial reads at odd offsets.
  std::vector<std::uint8_t> mid(1000);
  ASSERT_TRUE(fs_->Read("f", 4000, mid, 0).ok());
  EXPECT_TRUE(std::equal(mid.begin(), mid.end(), data.begin() + 4000));
}

TEST_F(ZoneFileTest, ManySmallAppendsAccumulate) {
  ASSERT_TRUE(fs_->Create("log", Lifetime::kShort, 0).ok());
  std::vector<std::uint8_t> all;
  SimTime t = 0;
  for (int i = 0; i < 100; ++i) {
    const auto chunk = Bytes(97, static_cast<std::uint64_t>(i) + 10);
    auto a = fs_->Append("log", chunk, t);
    ASSERT_TRUE(a.ok());
    t = a.value();
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(fs_->FileSize("log").value(), all.size());
  std::vector<std::uint8_t> out(all.size());
  ASSERT_TRUE(fs_->Read("log", 0, out, t).ok());
  EXPECT_EQ(out, all);
}

TEST_F(ZoneFileTest, ReadPastEndRejected) {
  ASSERT_TRUE(fs_->Create("f", Lifetime::kNone, 0).ok());
  ASSERT_TRUE(fs_->Append("f", Bytes(10, 3), 0).ok());
  std::vector<std::uint8_t> out(11);
  EXPECT_EQ(fs_->Read("f", 0, out, 0).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(fs_->Read("f", 5, std::span<std::uint8_t>(out.data(), 6), 0).code(),
            ErrorCode::kOutOfRange);
  EXPECT_EQ(fs_->Read("missing", 0, out, 0).code(), ErrorCode::kNotFound);
}

TEST_F(ZoneFileTest, SyncPadsAndAppendsContinueCorrectly) {
  ASSERT_TRUE(fs_->Create("f", Lifetime::kLong, 0).ok());
  const auto first = Bytes(5000, 4);
  const auto second = Bytes(7000, 5);
  ASSERT_TRUE(fs_->Append("f", first, 0).ok());
  ASSERT_TRUE(fs_->Sync("f", 0).ok());  // Pads the 904-byte tail into a full page.
  ASSERT_TRUE(fs_->Append("f", second, 0).ok());
  ASSERT_TRUE(fs_->Sync("f", 0).ok());
  std::vector<std::uint8_t> out(12000);
  ASSERT_TRUE(fs_->Read("f", 0, out, 0).ok());
  std::vector<std::uint8_t> expect = first;
  expect.insert(expect.end(), second.begin(), second.end());
  EXPECT_EQ(out, expect);
}

TEST_F(ZoneFileTest, LifetimeHintsSeparateZones) {
  // Two files with different hints must never share a zone.
  ASSERT_TRUE(fs_->Create("short", Lifetime::kShort, 0).ok());
  ASSERT_TRUE(fs_->Create("long", Lifetime::kLong, 0).ok());
  SimTime t = 0;
  for (int i = 0; i < 8; ++i) {
    auto a = fs_->Append("short", Bytes(4096, 20 + static_cast<std::uint64_t>(i)), t);
    ASSERT_TRUE(a.ok());
    auto b = fs_->Append("long", Bytes(4096, 40 + static_cast<std::uint64_t>(i)), a.value());
    ASSERT_TRUE(b.ok());
    t = b.value();
  }
  ASSERT_TRUE(fs_->Sync("short", t).ok());
  ASSERT_TRUE(fs_->Sync("long", t).ok());
  // Verify by re-reading both fully.
  std::vector<std::uint8_t> s(8 * 4096);
  std::vector<std::uint8_t> l(8 * 4096);
  ASSERT_TRUE(fs_->Read("short", 0, s, t).ok());
  ASSERT_TRUE(fs_->Read("long", 0, l, t).ok());
  EXPECT_TRUE(fs_->CheckConsistency().ok());
}

TEST_F(ZoneFileTest, DeleteThenChurnTriggersCompaction) {
  SimTime t = 0;
  Rng rng(6);
  // Create/delete files of a page each until zones must be reclaimed.
  int generation = 0;
  std::vector<std::string> live_files;
  for (int i = 0; i < 3000; ++i) {
    const std::string name = "f" + std::to_string(generation++);
    auto c = fs_->Create(name, Lifetime::kNone, t);
    ASSERT_TRUE(c.ok()) << c.status().ToString() << " at i=" << i;
    auto a = fs_->Append(name, Bytes(4096, static_cast<std::uint64_t>(i)), t);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(fs_->Sync(name, t).ok());
    t = a.value();
    live_files.push_back(name);
    // Keep ~32 files alive.
    if (live_files.size() > 32) {
      const std::size_t idx = rng.NextBelow(live_files.size());
      ASSERT_TRUE(fs_->Delete(live_files[idx], t).ok());
      live_files.erase(live_files.begin() + static_cast<std::ptrdiff_t>(idx));
    }
  }
  EXPECT_GT(fs_->stats().gc_cycles + fs_->stats().checkpoints, 0u);
  EXPECT_TRUE(fs_->CheckConsistency().ok());
  // All surviving files still intact.
  for (const auto& name : live_files) {
    std::vector<std::uint8_t> out(4096);
    ASSERT_TRUE(fs_->Read(name, 0, out, t).ok());
  }
}

TEST_F(ZoneFileTest, CompactionPreservesContent) {
  // Interleave two files in the same (None) class so zones hold both; delete one so the zone
  // is half-dead; force compaction; the survivor must be byte-identical.
  // Re-format with an eager scheduler so Pump compacts without space pressure.
  ZoneFileConfig eager;
  eager.sched.low_free_fraction = 1.0;
  {
    auto fs = ZoneFileSystem::Format(device_.get(), eager, 0);
    ASSERT_TRUE(fs.ok());
    fs_ = std::move(fs).value();
  }
  ASSERT_TRUE(fs_->Create("dead", Lifetime::kNone, 0).ok());
  ASSERT_TRUE(fs_->Create("live", Lifetime::kNone, 0).ok());
  std::vector<std::uint8_t> live_content;
  SimTime t = 0;
  for (int i = 0; i < 64; ++i) {
    auto chunk = Bytes(4096, 100 + static_cast<std::uint64_t>(i));
    auto a = fs_->Append("dead", Bytes(4096, 999), t);
    ASSERT_TRUE(a.ok());
    auto b = fs_->Append("live", chunk, a.value());
    ASSERT_TRUE(b.ok());
    t = b.value();
    live_content.insert(live_content.end(), chunk.begin(), chunk.end());
  }
  ASSERT_TRUE(fs_->Sync("dead", t).ok());
  ASSERT_TRUE(fs_->Sync("live", t).ok());
  ASSERT_TRUE(fs_->Delete("dead", t).ok());
  // Compact everything reclaimable.
  std::uint32_t total = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t ran = fs_->Pump(t, false, 1);
    if (ran == 0) {
      break;
    }
    total += ran;
  }
  EXPECT_GT(total, 0u) << "half-dead zones should be compacted";
  EXPECT_GT(fs_->stats().gc_pages_copied, 0u);
  std::vector<std::uint8_t> out(live_content.size());
  ASSERT_TRUE(fs_->Read("live", 0, out, t).ok());
  EXPECT_EQ(out, live_content);
  EXPECT_TRUE(fs_->CheckConsistency().ok());
}

TEST_F(ZoneFileTest, MountRecoversSyncedData) {
  const auto data = Bytes(10000, 7);
  ASSERT_TRUE(fs_->Create("persist", Lifetime::kMedium, 0).ok());
  ASSERT_TRUE(fs_->Append("persist", data, 0).ok());
  ASSERT_TRUE(fs_->Sync("persist", 0).ok());
  fs_.reset();  // "Crash": drop all in-memory state; the device retains its contents.

  auto remounted = ZoneFileSystem::Mount(device_.get(), ZoneFileConfig{}, 1 * kSecond);
  ASSERT_TRUE(remounted.ok()) << remounted.status().ToString();
  auto& fs = *remounted.value();
  ASSERT_TRUE(fs.Exists("persist"));
  EXPECT_EQ(fs.FileSize("persist").value(), data.size());
  EXPECT_EQ(fs.FileHint("persist").value(), Lifetime::kMedium);
  std::vector<std::uint8_t> out(data.size());
  ASSERT_TRUE(fs.Read("persist", 0, out, 2 * kSecond).ok());
  EXPECT_EQ(out, data);
  EXPECT_TRUE(fs.CheckConsistency().ok());
}

TEST_F(ZoneFileTest, MountDropsUnsyncedTail) {
  ASSERT_TRUE(fs_->Create("f", Lifetime::kNone, 0).ok());
  ASSERT_TRUE(fs_->Append("f", Bytes(4096, 8), 0).ok());
  ASSERT_TRUE(fs_->Sync("f", 0).ok());
  ASSERT_TRUE(fs_->Append("f", Bytes(5000, 9), 0).ok());  // Never synced.
  fs_.reset();

  auto remounted = ZoneFileSystem::Mount(device_.get(), ZoneFileConfig{}, 0);
  ASSERT_TRUE(remounted.ok());
  EXPECT_EQ(remounted.value()->FileSize("f").value(), 4096u)
      << "unsynced bytes must be rolled back";
}

TEST_F(ZoneFileTest, MountRecoversDeletes) {
  ASSERT_TRUE(fs_->Create("gone", Lifetime::kNone, 0).ok());
  ASSERT_TRUE(fs_->Append("gone", Bytes(4096, 10), 0).ok());
  ASSERT_TRUE(fs_->Sync("gone", 0).ok());
  ASSERT_TRUE(fs_->Delete("gone", 0).ok());
  ASSERT_TRUE(fs_->Create("kept", Lifetime::kNone, 0).ok());
  fs_.reset();

  auto remounted = ZoneFileSystem::Mount(device_.get(), ZoneFileConfig{}, 0);
  ASSERT_TRUE(remounted.ok());
  EXPECT_FALSE(remounted.value()->Exists("gone"));
  EXPECT_TRUE(remounted.value()->Exists("kept"));
}

TEST_F(ZoneFileTest, MountSurvivesJournalCheckpointCycles) {
  // Enough metadata traffic to force several checkpoint swaps, then verify a mount.
  SimTime t = 0;
  for (int i = 0; i < 400; ++i) {
    const std::string name = "n" + std::to_string(i);
    ASSERT_TRUE(fs_->Create(name, Lifetime::kNone, t).ok());
    ASSERT_TRUE(fs_->Append(name, Bytes(128, static_cast<std::uint64_t>(i)), t).ok());
    ASSERT_TRUE(fs_->Sync(name, t).ok());
    if (i >= 10) {
      ASSERT_TRUE(fs_->Delete("n" + std::to_string(i - 10), t).ok());
    }
  }
  ASSERT_GT(fs_->stats().checkpoints, 0u) << "test must exercise checkpoint swaps";
  fs_.reset();

  auto remounted = ZoneFileSystem::Mount(device_.get(), ZoneFileConfig{}, 0);
  ASSERT_TRUE(remounted.ok()) << remounted.status().ToString();
  auto& fs = *remounted.value();
  EXPECT_EQ(fs.ListFiles().size(), 10u);
  for (int i = 390; i < 400; ++i) {
    EXPECT_TRUE(fs.Exists("n" + std::to_string(i)));
  }
  EXPECT_TRUE(fs.CheckConsistency().ok());
}

TEST_F(ZoneFileTest, MountedFilesystemRemainsWritable) {
  ASSERT_TRUE(fs_->Create("f", Lifetime::kNone, 0).ok());
  ASSERT_TRUE(fs_->Append("f", Bytes(4096, 11), 0).ok());
  ASSERT_TRUE(fs_->Sync("f", 0).ok());
  fs_.reset();

  auto remounted = ZoneFileSystem::Mount(device_.get(), ZoneFileConfig{}, 0);
  ASSERT_TRUE(remounted.ok());
  auto& fs = *remounted.value();
  const auto more = Bytes(8192, 12);
  ASSERT_TRUE(fs.Append("f", more, 0).ok());
  ASSERT_TRUE(fs.Sync("f", 0).ok());
  EXPECT_EQ(fs.FileSize("f").value(), 4096u + 8192u);
  std::vector<std::uint8_t> out(8192);
  ASSERT_TRUE(fs.Read("f", 4096, out, 0).ok());
  EXPECT_EQ(out, more);
  EXPECT_TRUE(fs.CheckConsistency().ok());
}

TEST_F(ZoneFileTest, MountOnUnformattedDeviceFails) {
  ZnsDevice fresh(SmallFlash(), DeviceConfig());
  auto mounted = ZoneFileSystem::Mount(&fresh, ZoneFileConfig{}, 0);
  EXPECT_FALSE(mounted.ok());
  EXPECT_EQ(mounted.code(), ErrorCode::kNotFound);
}


TEST_F(ZoneFileTest, ManyExtentFileSurvivesMultiPageJournalRecord) {
  // A file with hundreds of non-contiguous extents produces a journal record larger than one
  // metadata page (multi-part blob) — it must replay correctly.
  ASSERT_TRUE(fs_->Create("frag", Lifetime::kShort, 0).ok());
  ASSERT_TRUE(fs_->Create("other", Lifetime::kShort, 0).ok());
  SimTime t = 0;
  // Alternate single-page appends between two files in the same class: extents cannot merge.
  for (int i = 0; i < 400; ++i) {
    auto a = fs_->Append("frag", Bytes(4096, 1000 + static_cast<std::uint64_t>(i)), t);
    ASSERT_TRUE(a.ok());
    auto b = fs_->Append("other", Bytes(4096, 5000 + static_cast<std::uint64_t>(i)), a.value());
    ASSERT_TRUE(b.ok());
    t = b.value();
  }
  ASSERT_TRUE(fs_->Sync("frag", t).ok());
  ASSERT_TRUE(fs_->Sync("other", t).ok());
  fs_.reset();

  auto remounted = ZoneFileSystem::Mount(device_.get(), ZoneFileConfig{}, 0);
  ASSERT_TRUE(remounted.ok()) << remounted.status().ToString();
  auto& fs = *remounted.value();
  ASSERT_EQ(fs.FileSize("frag").value(), 400u * 4096);
  // Spot-check interleaved content.
  std::vector<std::uint8_t> out(4096);
  for (int i = 0; i < 400; i += 37) {
    ASSERT_TRUE(fs.Read("frag", static_cast<std::uint64_t>(i) * 4096, out, 0).ok());
    ASSERT_EQ(out, Bytes(4096, 1000 + static_cast<std::uint64_t>(i))) << i;
  }
  EXPECT_TRUE(fs.CheckConsistency().ok());
}

TEST_F(ZoneFileTest, LargeCheckpointSpansPagesAndReplays) {
  // Many files with long names: the checkpoint blob exceeds one page and must be written and
  // replayed as a multi-part blob.
  SimTime t = 0;
  for (int i = 0; i < 120; ++i) {
    const std::string name(120, static_cast<char>('a' + i % 26));
    const std::string unique = name + std::to_string(i);
    ASSERT_TRUE(fs_->Create(unique, Lifetime::kLong, t).ok());
    ASSERT_TRUE(fs_->Append(unique, Bytes(512, static_cast<std::uint64_t>(i)), t).ok());
    ASSERT_TRUE(fs_->Sync(unique, t).ok());
  }
  // Force checkpoint swaps by exhausting the metadata zone with further journal traffic.
  for (int i = 0; i < 200; ++i) {
    const std::string name = "churn" + std::to_string(i);
    ASSERT_TRUE(fs_->Create(name, Lifetime::kShort, t).ok());
    ASSERT_TRUE(fs_->Delete(name, t).ok());
  }
  ASSERT_GT(fs_->stats().checkpoints, 0u);
  fs_.reset();

  auto remounted = ZoneFileSystem::Mount(device_.get(), ZoneFileConfig{}, 0);
  ASSERT_TRUE(remounted.ok()) << remounted.status().ToString();
  EXPECT_EQ(remounted.value()->ListFiles().size(), 120u);
  EXPECT_TRUE(remounted.value()->CheckConsistency().ok());
}

TEST_F(ZoneFileTest, GcRecordReplayTrimsUnsyncedExtents) {
  // Regression (found by the differential fuzzer): compaction journals full extent maps that
  // may include unsynced data; replay must trim to the synced prefix.
  ZoneFileConfig eager;
  eager.sched.low_free_fraction = 1.0;
  {
    auto fs = ZoneFileSystem::Format(device_.get(), eager, 0);
    ASSERT_TRUE(fs.ok());
    fs_ = std::move(fs).value();
  }
  ASSERT_TRUE(fs_->Create("dead", Lifetime::kNone, 0).ok());
  ASSERT_TRUE(fs_->Create("mixed", Lifetime::kNone, 0).ok());
  SimTime t = 0;
  for (int i = 0; i < 64; ++i) {
    auto a = fs_->Append("dead", Bytes(4096, 9), t);
    ASSERT_TRUE(a.ok());
    auto b = fs_->Append("mixed", Bytes(4096, 10 + static_cast<std::uint64_t>(i)), a.value());
    ASSERT_TRUE(b.ok());
    t = b.value();
  }
  // Sync only HALF of "mixed"'s bytes... sync then append more unsynced pages.
  ASSERT_TRUE(fs_->Sync("mixed", t).ok());
  ASSERT_TRUE(fs_->Sync("dead", t).ok());
  for (int i = 0; i < 16; ++i) {
    auto a = fs_->Append("mixed", Bytes(4096, 200), t);
    ASSERT_TRUE(a.ok());
    t = a.value();
  }
  ASSERT_TRUE(fs_->Delete("dead", t).ok());
  // Compaction relocates "mixed" (including its unsynced pages) and journals the new map.
  std::uint32_t ran = 0;
  for (int i = 0; i < 128 && fs_->Pump(t, false, 1) > 0; ++i) {
    ++ran;
  }
  ASSERT_GT(ran, 0u);
  fs_.reset();

  auto remounted = ZoneFileSystem::Mount(device_.get(), eager, 0);
  ASSERT_TRUE(remounted.ok()) << remounted.status().ToString();
  auto& fs = *remounted.value();
  EXPECT_EQ(fs.FileSize("mixed").value(), 64u * 4096) << "unsynced tail must roll back";
  EXPECT_TRUE(fs.CheckConsistency().ok());
  std::vector<std::uint8_t> out(4096);
  ASSERT_TRUE(fs.Read("mixed", 20 * 4096, out, 0).ok());
  EXPECT_EQ(out, Bytes(4096, 30));
}

TEST_F(ZoneFileTest, WriteAmplificationNearOneForGroupedLifetimes) {
  // Churn where whole files die together (hint-grouped): WA should stay near 1 because zones
  // die wholesale and are reset, not copied.
  SimTime t = 0;
  int gen = 0;
  std::vector<std::string> live;
  for (int i = 0; i < 400; ++i) {
    const std::string name = "g" + std::to_string(gen++);
    ASSERT_TRUE(fs_->Create(name, Lifetime::kShort, t).ok());
    // 8-page files: metadata (one journal page per create/sync/delete) amortizes.
    auto a = fs_->Append(name, Bytes(8 * 4096, static_cast<std::uint64_t>(i)), t);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(fs_->Sync(name, t).ok());
    t = a.value();
    live.push_back(name);
    if (live.size() > 8) {
      // FIFO delete: oldest files die first, so zones drain front-to-back.
      ASSERT_TRUE(fs_->Delete(live.front(), t).ok());
      live.erase(live.begin());
    }
  }
  // Metadata pages inflate WA a little; data relocation should be almost nil.
  EXPECT_LT(fs_->EndToEndWriteAmplification(), 1.8);
  EXPECT_TRUE(fs_->CheckConsistency().ok());
}

}  // namespace
}  // namespace blockhead
